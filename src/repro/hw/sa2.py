"""A hypothetical StrongARM SA-2 machine (the paper's introduction).

The paper motivates voltage scheduling with the then-upcoming SA-2:
"estimated to dissipate 500mW at 600MHz, but only 40mW when running at
150MHz -- a 12-fold energy reduction for a 4-fold performance reduction."
This module builds that machine inside the same framework, demonstrating
that nothing in the library is specific to the Itsy:

- a clock table from 150 to 600 MHz;
- a voltage schedule where the core voltage falls with frequency (true
  voltage scaling, not the Itsy's single below-spec setting);
- power constants calibrated to the two quoted operating points.

With ``P = c * V^2 * f``, the quoted 12.5x power ratio over a 4x frequency
ratio implies a voltage ratio of ``sqrt(12.5 / 4) ~= 1.77``; we take 1.8 V
at 600 MHz falling linearly to ~1.02 V at 150 MHz, and solve ``c`` from
the 500 mW point.

The SA-2 machine powers only a processor (the paper's example assumes "an
idle computer consumes no energy"), so the whole-system terms are zero and
nap power is negligible.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.hw.clocksteps import ClockStep, ClockTable
from repro.hw.cpu import CpuModel
from repro.hw.machine import Machine
from repro.hw.memory import MemoryTimings
from repro.hw.power import CoreState, PowerModel, PowerParameters
from repro.hw.rails import ScheduledRail

#: Eleven SA-2 clock steps, 150 to 600 MHz in 45 MHz increments.
SA2_FREQUENCIES_MHZ: Tuple[float, ...] = tuple(150.0 + 45.0 * i for i in range(11))

SA2_CLOCK_TABLE = ClockTable(SA2_FREQUENCIES_MHZ)

#: Voltage endpoints of the scaling schedule.
SA2_VOLTS_MAX = 1.8
SA2_VOLTS_MIN = SA2_VOLTS_MAX / 1.7678  # ~1.018 V: sqrt(12.5/4) ratio

#: Dynamic-power coefficient solving 500 mW = c * 1.8^2 * 600 (W/MHz/V^2).
SA2_CORE_W_PER_MHZ_V2 = 0.500 / (SA2_VOLTS_MAX**2 * 600.0)

#: An idealized flat memory system (the intro example is compute-bound).
SA2_MEMORY_TIMINGS = MemoryTimings(
    cycles_per_mem_ref=tuple([10] * 11),
    cycles_per_cache_ref=tuple([40] * 11),
)


def sa2_volts_for_step(step: ClockStep) -> float:
    """The SA-2 voltage schedule: linear in frequency between endpoints."""
    span = SA2_FREQUENCIES_MHZ[-1] - SA2_FREQUENCIES_MHZ[0]
    frac = (step.mhz - SA2_FREQUENCIES_MHZ[0]) / span
    return SA2_VOLTS_MIN + frac * (SA2_VOLTS_MAX - SA2_VOLTS_MIN)


def sa2_power_model() -> PowerModel:
    """Processor-only power model with the SA-2 dynamic coefficient."""
    return PowerModel(
        PowerParameters(
            fixed_w=0.0,
            system_w_per_mhz=0.0,
            core_w_per_mhz_v2=SA2_CORE_W_PER_MHZ_V2,
            pad_w_per_mhz_v2=0.0,
            nap_w_per_mhz_v2=0.0,
        )
    )


def sa2_power_w(step: ClockStep, state: CoreState = CoreState.ACTIVE) -> float:
    """Power at a step under the SA-2 voltage schedule."""
    return sa2_power_model().total_w(step, sa2_volts_for_step(step), state)


def sa2_energy_for_instructions(
    instructions: float, step: ClockStep
) -> "tuple[float, float]":
    """(seconds, joules) to run ``instructions`` at one instruction/cycle.

    The paper's worked example: 600 million instructions take 1 s and
    500 mJ at 600 MHz, 4 s and ~160 mJ at 150 MHz.
    """
    seconds = instructions / (step.mhz * 1e6)
    watts = sa2_power_w(step)
    return seconds, watts * seconds


def sa2_cpu() -> CpuModel:
    """A CPU model over the SA-2 clock table (for kernel experiments)."""
    return CpuModel(
        clock_table=SA2_CLOCK_TABLE,
        timings=SA2_MEMORY_TIMINGS,
        step=SA2_CLOCK_TABLE.max_step,
    )


def sa2_voltage_schedule(clock_table: ClockTable) -> Tuple[float, ...]:
    """The per-step voltage schedule: linear in frequency between the
    endpoints, 1.018 V at the slowest step up to 1.8 V at the fastest."""
    lo = clock_table.min_step.mhz
    span = clock_table.max_step.mhz - lo
    if span <= 0:
        return (SA2_VOLTS_MAX,) * len(clock_table)
    return tuple(
        SA2_VOLTS_MIN + (s.mhz - lo) / span * (SA2_VOLTS_MAX - SA2_VOLTS_MIN)
        for s in clock_table
    )


def sa2_memory_timings(num_steps: int) -> MemoryTimings:
    """The idealized flat memory table, sized for ``num_steps`` steps."""
    return MemoryTimings(
        cycles_per_mem_ref=tuple([10] * num_steps),
        cycles_per_cache_ref=tuple([40] * num_steps),
    )


class Sa2Machine(Machine):
    """The hypothetical SA-2 as a whole machine the kernel can drive.

    Unlike the Itsy's two-setting rail, the SA-2 rail follows a per-step
    voltage schedule: when a governor requests a frequency without naming a
    voltage, :meth:`auto_volts_for` returns the scheduled voltage so the
    kernel tracks the schedule in both directions (raising before a
    frequency increase, dropping after a decrease).
    """

    def __init__(
        self,
        clock_table: ClockTable = SA2_CLOCK_TABLE,
        timings: Optional[MemoryTimings] = None,
        initial_mhz: Optional[float] = None,
    ):
        if timings is None:
            timings = sa2_memory_timings(len(clock_table))
        schedule = sa2_voltage_schedule(clock_table)
        step = (
            clock_table.max_step
            if initial_mhz is None
            else clock_table.step_for_mhz(initial_mhz)
        )
        rail = ScheduledRail(volts_by_index=schedule, volts=schedule[step.index])
        cpu = CpuModel(
            clock_table=clock_table, timings=timings, rail=rail, step=step
        )
        super().__init__(cpu, sa2_power_model())
        self._schedule = schedule

    def auto_volts_for(self, step: ClockStep) -> Optional[float]:
        volts = self._schedule[step.index]
        if abs(volts - self.volts) < 1e-12:
            return None
        return volts
