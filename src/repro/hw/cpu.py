"""The SA-1100 CPU execution model.

The CPU model tracks the current clock step and core rail voltage, converts
:class:`~repro.hw.work.Work` into wall-clock time through the memory timing
model, and charges the transition costs measured in section 5.4 of the
paper:

- changing the clock frequency stalls the processor for about **200 us**,
  independent of the starting or target speed (11,800 clock periods at
  59 MHz, ~41,280 at 206.4 MHz);
- voltage transitions settle per :mod:`repro.hw.rails` (250 us down,
  instantaneous up).

The model enforces the ordering constraint that a real governor must obey:
to raise the frequency above the low-voltage bound the voltage must be
raised *first*; to lower the voltage the frequency must already be at or
below the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.hw.clocksteps import SA1100_CLOCK_TABLE, ClockStep, ClockTable
from repro.hw.memory import SA1100_MEMORY_TIMINGS, MemoryTimings
from repro.hw.power import CoreState
from repro.hw.rails import CoreRail, VoltageError
from repro.hw.work import Work

#: Measured cost of a clock-frequency change (paper §5.4): ~200 us during
#: which the processor cannot execute instructions.
CLOCK_CHANGE_STALL_US = 200.0


@dataclass
class TransitionCounters:
    """Counts and cumulative costs of hardware transitions."""

    clock_changes: int = 0
    clock_stall_us: float = 0.0
    voltage_changes: int = 0
    voltage_settle_us: float = 0.0


@dataclass
class CpuModel:
    """State and arithmetic of the SA-1100 core.

    Attributes:
        clock_table: the discrete clock steps available.
        timings: the frequency-dependent memory cost table.
        rail: the core voltage rail.
        step: the current clock step.
        clock_change_stall_us: stall charged on every frequency change.
    """

    clock_table: ClockTable = field(default_factory=lambda: SA1100_CLOCK_TABLE)
    timings: MemoryTimings = field(default_factory=lambda: SA1100_MEMORY_TIMINGS)
    rail: CoreRail = field(default_factory=CoreRail)
    step: ClockStep = field(default=None)  # type: ignore[assignment]
    clock_change_stall_us: float = CLOCK_CHANGE_STALL_US
    counters: TransitionCounters = field(default_factory=TransitionCounters)

    def __post_init__(self) -> None:
        if self.step is None:
            self.step = self.clock_table.max_step
        if self.timings.num_steps != len(self.clock_table):
            raise ValueError("memory timing table does not cover the clock table")

    # -- queries -----------------------------------------------------------------

    @property
    def mhz(self) -> float:
        """Current clock frequency in MHz."""
        return self.step.mhz

    @property
    def volts(self) -> float:
        """Current core rail voltage."""
        return self.rail.volts

    def duration_us(self, work: Work) -> float:
        """Wall-clock time ``work`` takes at the current step."""
        return work.duration_us(self.step, self.timings)

    def split_work(self, work: Work, elapsed_us: float) -> Tuple[Work, Work]:
        """Split ``work`` into (done, remaining) after ``elapsed_us``."""
        return work.split_at_us(elapsed_us, self.step, self.timings)

    # -- transitions ----------------------------------------------------------------

    def set_step_index(self, index: int) -> float:
        """Switch to clock step ``index``; return the stall in microseconds.

        The index is clamped into the table range (speed setters may compute
        out-of-range indices; pegging at the extremes is the defined
        behaviour).  No stall is charged when the step is unchanged.

        Raises:
            VoltageError: if the target frequency is unsafe at the present
                core voltage (the governor must raise the voltage first).
        """
        index = self.clock_table.clamp_index(index)
        new_step = self.clock_table[index]
        if new_step.index == self.step.index:
            return 0.0
        if not self.rail.allows(self.rail.volts, new_step):
            raise VoltageError(
                f"cannot run {new_step.mhz:.1f} MHz at {self.rail.volts} V; "
                "raise the core voltage first"
            )
        self.step = new_step
        self.counters.clock_changes += 1
        self.counters.clock_stall_us += self.clock_change_stall_us
        return self.clock_change_stall_us

    def set_voltage(self, volts: float) -> float:
        """Change the core voltage; return the settle time in microseconds.

        Raises:
            VoltageError: for unsupported voltages or unsafe combinations
                with the current clock step.
        """
        if volts == self.rail.volts:
            return 0.0
        settle = self.rail.set_voltage(volts, self.step)
        self.counters.voltage_changes += 1
        self.counters.voltage_settle_us += settle
        return settle

    def stall_cycles_lost(self) -> float:
        """Clock periods lost to the most recent frequency change.

        The paper quotes 11,800 periods at 59 MHz up to ~41,280 at
        206.4 MHz; this is simply ``stall * f`` at the (new) frequency.
        """
        return self.clock_change_stall_us * self.step.mhz

    def idle_state(self) -> CoreState:
        """The core state entered by the idle process (nap mode)."""
        return CoreState.NAP
