"""Voltage rails of the Itsy and their transition behaviour.

The Itsy drives the SA-1100 core from a 1.5 V rail and the peripherals from
a 3.3 V rail; both hang off a single 3.1 V supply.  The units used in the
paper were modified so the core rail can also be driven at 1.23 V -- below
the manufacturer's specification, but safe at moderate clock speeds.  The
paper measured the transition costs (section 5.4):

- reducing the voltage from 1.5 V to 1.23 V takes about **250 us** to
  settle (the rail sags slowly because of the decoupling capacitors,
  briefly undershoots, then settles);
- raising the voltage is **effectively instantaneous**.

Because 1.23 V is out of spec, it may only be used at moderate clock
speeds: the paper's voltage-scaling configuration drops the core voltage
only when the clock is below 162.2 MHz.  The rail model enforces a
configurable maximum safe frequency for the low voltage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.hw.clocksteps import ClockStep

#: Nominal SA-1100 core voltage on the Itsy.
VOLTAGE_HIGH = 1.5

#: The below-spec reduced core voltage of the modified Itsy units.
VOLTAGE_LOW = 1.23

#: Peripheral / I/O pad rail voltage.
VOLTAGE_IO = 3.3

#: Measured settle time when *reducing* the core voltage (paper section 5.4).
VOLTAGE_DOWN_SETTLE_US = 250.0

#: Voltage increases are effectively instantaneous (paper section 5.4).
VOLTAGE_UP_SETTLE_US = 0.0

#: Highest clock frequency at which 1.23 V is considered safe.  The paper's
#: voltage-scaling experiments scale the voltage when the clock drops below
#: 162.2 MHz.
DEFAULT_LOW_VOLTAGE_MAX_MHZ = 162.2


class VoltageError(ValueError):
    """Raised when a rail transition would violate a safety constraint."""


@dataclass
class CoreRail:
    """The SA-1100 core supply rail.

    Tracks the present voltage and validates transitions against the
    low-voltage frequency bound.  The rail itself does not know about time;
    :meth:`set_voltage` *returns* the settle duration so the caller (the CPU
    model / kernel) can account for it.

    Attributes:
        high_volts: the nominal voltage (1.5 V).
        low_volts: the reduced voltage (1.23 V).
        low_voltage_max_mhz: fastest clock at which ``low_volts`` is safe.
        volts: present rail voltage.
    """

    high_volts: float = VOLTAGE_HIGH
    low_volts: float = VOLTAGE_LOW
    low_voltage_max_mhz: float = DEFAULT_LOW_VOLTAGE_MAX_MHZ
    volts: float = field(default=VOLTAGE_HIGH)
    down_settle_us: float = VOLTAGE_DOWN_SETTLE_US
    up_settle_us: float = VOLTAGE_UP_SETTLE_US

    def __post_init__(self) -> None:
        if self.low_volts >= self.high_volts:
            raise ValueError("low voltage must be below high voltage")
        if self.volts not in (self.high_volts, self.low_volts):
            raise VoltageError(f"unsupported core voltage {self.volts}")

    # -- queries -----------------------------------------------------------------

    @property
    def is_low(self) -> bool:
        """True when the rail is at the reduced voltage."""
        return self.volts == self.low_volts

    def allows(self, volts: float, step: ClockStep) -> bool:
        """True if running ``step`` at ``volts`` is within the safe envelope."""
        if volts == self.high_volts:
            return True
        if volts == self.low_volts:
            return step.mhz <= self.low_voltage_max_mhz + 1e-9
        return False

    def settle_us_for(self, volts: float) -> float:
        """Settle time for a transition to ``volts`` (0 if no change)."""
        if volts == self.volts:
            return 0.0
        return self.down_settle_us if volts < self.volts else self.up_settle_us

    # -- transitions --------------------------------------------------------------

    def set_voltage(self, volts: float, step: ClockStep) -> float:
        """Change the rail voltage; return the settle time in microseconds.

        Args:
            volts: target voltage; must be the high or low rail setting.
            step: clock step that will be (or is) in effect, used to check
                the low-voltage safety bound.

        Returns:
            The settle duration in microseconds (0 when unchanged or when
            raising the voltage).

        Raises:
            VoltageError: if ``volts`` is not a supported setting or the
                clock is too fast for the low voltage.
        """
        if volts not in (self.high_volts, self.low_volts):
            raise VoltageError(f"unsupported core voltage {volts}")
        if not self.allows(volts, step):
            raise VoltageError(
                f"{volts} V is unsafe at {step.mhz:.1f} MHz "
                f"(limit {self.low_voltage_max_mhz:.1f} MHz)"
            )
        settle = self.settle_us_for(volts)
        self.volts = volts
        return settle


@dataclass
class ScheduledRail:
    """A core rail that follows a per-clock-step voltage schedule.

    This models true voltage scaling (the paper's hypothetical SA-2): each
    clock step has a designated supply voltage, nondecreasing with
    frequency, and a step is safe at any voltage at or above its scheduled
    value.  Settle times default to zero (the SA-2 of the introduction is
    an idealized machine); real parts would set them like the Itsy rail.

    Attributes:
        volts_by_index: scheduled voltage per clock step, slowest first.
        volts: present rail voltage (defaults to the fastest step's).
    """

    volts_by_index: Tuple[float, ...]
    volts: Optional[float] = None
    down_settle_us: float = 0.0
    up_settle_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.volts_by_index:
            raise ValueError("voltage schedule must be non-empty")
        if any(v <= 0 for v in self.volts_by_index):
            raise ValueError("scheduled voltages must be positive")
        if list(self.volts_by_index) != sorted(self.volts_by_index):
            raise ValueError("voltage schedule must be nondecreasing")
        if self.volts is None:
            self.volts = self.volts_by_index[-1]
        if not any(abs(self.volts - v) < 1e-9 for v in self.volts_by_index):
            raise VoltageError(f"unsupported core voltage {self.volts}")

    # -- queries -----------------------------------------------------------------

    def volts_for(self, step: ClockStep) -> float:
        """The scheduled voltage of ``step``."""
        return self.volts_by_index[step.index]

    def allows(self, volts: float, step: ClockStep) -> bool:
        """True if running ``step`` at ``volts`` is within the safe envelope."""
        return volts + 1e-9 >= self.volts_for(step)

    def settle_us_for(self, volts: float) -> float:
        """Settle time for a transition to ``volts`` (0 if no change)."""
        if volts == self.volts:
            return 0.0
        return self.down_settle_us if volts < self.volts else self.up_settle_us

    # -- transitions --------------------------------------------------------------

    def set_voltage(self, volts: float, step: ClockStep) -> float:
        """Change the rail voltage; return the settle time in microseconds.

        Raises:
            VoltageError: if ``volts`` is not on the schedule or is below
                the scheduled voltage of ``step``.
        """
        if not any(abs(volts - v) < 1e-9 for v in self.volts_by_index):
            raise VoltageError(f"unsupported core voltage {volts}")
        if not self.allows(volts, step):
            raise VoltageError(
                f"{volts:.3f} V is unsafe at {step.mhz:.1f} MHz "
                f"(schedule requires {self.volts_for(step):.3f} V)"
            )
        settle = self.settle_us_for(volts)
        self.volts = volts
        return settle
