"""Machine presets addressable by name: the spec layer for the machine axis.

:class:`MachineSpec` is the machine-side sibling of
:class:`~repro.measure.parallel.WorkloadSpec` and ``PolicySpec``: a frozen,
picklable value naming a machine preset plus optional parameter overrides.
Specs — unlike machine instances — pickle cleanly and digest stably, which
is what lets sweep cells carry the machine axis to worker processes and
into content-addressed cache keys.

The named presets (also printed by ``python -m repro list-machines``):

- ``itsy`` — the WRL-modified Itsy of the evaluation (1.5 V core
  switchable to 1.23 V);
- ``itsy-stock`` — an unmodified Itsy (1.5 V only);
- ``sa2`` — the hypothetical StrongARM SA-2 of the introduction, with a
  full per-step voltage schedule;
- ``itsy-reconf`` / ``sa2-reconf`` — the same machines with *costly*
  reconfiguration: clock changes stall longer and draw extra power, and
  voltage drops sag for longer, after Rottleuthner et al.'s measurements
  of non-free clock reconfiguration on constrained IoT parts.

``<name>@<volts>`` selects a boot voltage, e.g. ``itsy@1.23`` boots a
modified Itsy already on the reduced rail (at the fastest clock step that
is safe there).  Programmatic construction can further override the clock
table, the low-voltage frequency bound, power-model constants, and the
per-transition reconfiguration costs (``clock_stall_us`` /
``volt_settle_us`` / ``reconf_power_w``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.hw.clocksteps import SA1100_CLOCK_TABLE, ClockTable
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.machine import Machine
from repro.hw.memory import SA1100_MEMORY_TIMINGS, fixed_latency_timings
from repro.hw.power import PowerModel, PowerParameters
from repro.hw.rails import VOLTAGE_HIGH
from repro.hw.sa2 import SA2_CLOCK_TABLE, Sa2Machine

#: Effective wall-clock DRAM latencies matching Table 3 at the fastest
#: SA-1100 step; used to synthesize timing tables for overridden Itsy
#: clock tables (the measured Table 3 only covers the stock frequencies).
ITSY_MEM_LATENCY_NS = 96.0
ITSY_CACHE_LATENCY_NS = 330.0


@dataclass(frozen=True)
class MachineSpec:
    """A machine named by preset plus optional overrides.

    Attributes:
        name: preset name (see :data:`MACHINE_PRESETS`).
        initial_mhz: boot clock frequency; must match a table step.
        initial_volts: boot core voltage (presets with a voltage schedule
            reject this).
        frequencies_mhz: replacement clock table, ascending MHz.
        low_voltage_max_mhz: override of the Itsy 1.23 V frequency bound.
        power: power-model constant overrides as ``((field, value), ...)``
            pairs naming :class:`~repro.hw.power.PowerParameters` fields.
        clock_stall_us: override of the per-clock-change stall duration.
        volt_settle_us: override of the rail's downward settle (sag)
            duration after a voltage drop.
        reconf_power_w: extra power drawn during clock-change stall
            windows (see :attr:`repro.hw.machine.Machine.reconf_extra_w`).
    """

    name: str = "itsy"
    initial_mhz: Optional[float] = None
    initial_volts: Optional[float] = None
    frequencies_mhz: Optional[Tuple[float, ...]] = None
    low_voltage_max_mhz: Optional[float] = None
    power: Optional[Tuple[Tuple[str, float], ...]] = None
    clock_stall_us: Optional[float] = None
    volt_settle_us: Optional[float] = None
    reconf_power_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.frequencies_mhz is not None:
            object.__setattr__(
                self, "frequencies_mhz", tuple(self.frequencies_mhz)
            )
        if self.power is not None:
            items = (
                sorted(self.power.items())
                if isinstance(self.power, dict)
                else self.power
            )
            object.__setattr__(self, "power", tuple(tuple(p) for p in items))
        for name in ("clock_stall_us", "volt_settle_us", "reconf_power_w"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    @classmethod
    def parse(cls, text: str) -> "MachineSpec":
        """Parse ``<preset>`` or ``<preset>@<volts>`` (e.g. ``itsy@1.23``).

        Raises:
            ValueError: for unknown presets or a malformed voltage.
        """
        name, sep, volts = text.partition("@")
        _preset(name)  # unknown names raise here
        if not sep:
            return cls(name=name)
        try:
            return cls(name=name, initial_volts=float(volts))
        except ValueError:
            raise ValueError(
                f"bad machine spec {text!r}: expected <name>[@<volts>]"
            ) from None

    @property
    def label(self) -> str:
        """A short human-readable name: the ``--machine`` grammar, plus a
        ``*`` marker when programmatic overrides make the spec unnameable
        on the command line."""
        text = self.name
        if self.initial_volts is not None:
            text += f"@{self.initial_volts:g}"
        if (
            self.initial_mhz is not None
            or self.frequencies_mhz is not None
            or self.low_voltage_max_mhz is not None
            or self.power
            or self.clock_stall_us is not None
            or self.volt_settle_us is not None
            or self.reconf_power_w is not None
        ):
            text += "*"
        return text

    def clock_table(self) -> ClockTable:
        """The clock table this machine will have once built."""
        if self.frequencies_mhz is not None:
            return ClockTable(self.frequencies_mhz)
        return _preset(self.name).clock_table

    def power_parameters(self, base: PowerParameters) -> PowerParameters:
        """``base`` with this spec's power overrides applied."""
        if not self.power:
            return base
        try:
            return dataclasses.replace(base, **dict(self.power))
        except TypeError:
            known = ", ".join(f.name for f in dataclasses.fields(base))
            raise ValueError(
                f"unknown power parameter in {self.power!r}; known: {known}"
            ) from None

    def build(self) -> Machine:
        """Construct a fresh machine instance from this spec.

        Raises:
            ValueError: for unknown presets, frequencies not in the clock
                table, or overrides the preset does not support.
        """
        machine = _preset(self.name).builder(self)
        if self.power:
            machine.power = PowerModel(
                self.power_parameters(machine.power.params)
            )
        # Reconfiguration-cost overrides are applied after the preset
        # builder, so an explicit spec value wins over a preset's family
        # default (the *-reconf builders set all three).
        if self.clock_stall_us is not None:
            machine.cpu.clock_change_stall_us = self.clock_stall_us
        if self.volt_settle_us is not None:
            machine.cpu.rail.down_settle_us = self.volt_settle_us
        if self.reconf_power_w is not None:
            machine.reconf_extra_w = self.reconf_power_w
        return machine

    # A spec is directly usable wherever a zero-argument machine factory
    # is expected (``machine_factory=spec``).
    def __call__(self) -> Machine:
        return self.build()


@dataclass(frozen=True)
class MachinePreset:
    """A named machine preset in the registry."""

    name: str
    builder: Callable[[MachineSpec], Machine] = field(compare=False)
    clock_table: ClockTable = field(compare=False)
    description: str = ""


def _fastest_safe_mhz(table: ClockTable, max_mhz: float) -> float:
    safe = [s.mhz for s in table if s.mhz <= max_mhz + 1e-9]
    if not safe:
        raise ValueError(
            f"no clock step at or below {max_mhz:.1f} MHz for the boot voltage"
        )
    return safe[-1]


def _build_itsy(spec: MachineSpec, low_voltage_available: bool = True) -> Machine:
    table = spec.clock_table()
    if spec.frequencies_mhz is None:
        timings = SA1100_MEMORY_TIMINGS
    else:
        timings = fixed_latency_timings(
            spec.frequencies_mhz, ITSY_MEM_LATENCY_NS, ITSY_CACHE_LATENCY_NS
        )
    low_max = (
        ItsyConfig.low_voltage_max_mhz
        if spec.low_voltage_max_mhz is None
        else spec.low_voltage_max_mhz
    )
    volts = VOLTAGE_HIGH if spec.initial_volts is None else spec.initial_volts
    if spec.initial_mhz is not None:
        mhz = spec.initial_mhz
    elif volts < VOLTAGE_HIGH:
        # Booting on the reduced rail: default to the fastest safe step.
        mhz = _fastest_safe_mhz(table, low_max)
    else:
        mhz = table.max_step.mhz
    config = ItsyConfig(
        initial_mhz=mhz,
        initial_volts=volts,
        low_voltage_available=low_voltage_available,
        low_voltage_max_mhz=low_max,
    )
    try:
        return ItsyMachine(config, clock_table=table, timings=timings)
    except KeyError as exc:
        raise ValueError(str(exc)) from None


def _build_itsy_stock(spec: MachineSpec) -> Machine:
    return _build_itsy(spec, low_voltage_available=False)


def _build_sa2(spec: MachineSpec) -> Machine:
    if spec.initial_volts is not None:
        raise ValueError(
            "sa2 follows a per-step voltage schedule; it takes no boot voltage"
        )
    if spec.low_voltage_max_mhz is not None:
        raise ValueError("sa2 has no low-voltage frequency bound to override")
    try:
        return Sa2Machine(
            clock_table=spec.clock_table(), initial_mhz=spec.initial_mhz
        )
    except KeyError as exc:
        raise ValueError(str(exc)) from None


#: Family defaults of the ``*-reconf`` presets: a frequency change costs a
#: millisecond-scale PLL/relock stall that additionally draws regulator
#: power, and a voltage drop sags for longer before settling — the
#: constrained-IoT reconfiguration regime of Rottleuthner et al., scaled
#: to the 10 ms quantum of this simulator.  ``MachineSpec`` fields
#: override any of them (``MachineSpec("itsy-reconf", reconf_power_w=0)``).
RECONF_CLOCK_STALL_US = 1_000.0
RECONF_VOLT_SETTLE_US = 500.0
RECONF_POWER_W = 0.12


def _with_reconf_costs(machine: Machine) -> Machine:
    machine.cpu.clock_change_stall_us = RECONF_CLOCK_STALL_US
    machine.cpu.rail.down_settle_us = RECONF_VOLT_SETTLE_US
    machine.reconf_extra_w = RECONF_POWER_W
    return machine


def _build_itsy_reconf(spec: MachineSpec) -> Machine:
    return _with_reconf_costs(_build_itsy(spec))


def _build_sa2_reconf(spec: MachineSpec) -> Machine:
    return _with_reconf_costs(_build_sa2(spec))


#: Machine presets by stable name.  Names are part of the sweep cache-key
#: schema: renaming one invalidates cached results built through it.
MACHINE_PRESETS: Dict[str, MachinePreset] = {}


def register_machine(preset: MachinePreset) -> None:
    """Add (or replace) a named machine preset."""
    MACHINE_PRESETS[preset.name] = preset


register_machine(
    MachinePreset(
        name="itsy",
        builder=_build_itsy,
        clock_table=SA1100_CLOCK_TABLE,
        description=(
            "WRL-modified Itsy (SA-1100): 59.0-206.4 MHz, "
            "1.5 V core switchable to 1.23 V"
        ),
    )
)
register_machine(
    MachinePreset(
        name="itsy-stock",
        builder=_build_itsy_stock,
        clock_table=SA1100_CLOCK_TABLE,
        description="unmodified Itsy (SA-1100): 59.0-206.4 MHz, 1.5 V core only",
    )
)
register_machine(
    MachinePreset(
        name="sa2",
        builder=_build_sa2,
        clock_table=SA2_CLOCK_TABLE,
        description=(
            "hypothetical StrongARM SA-2: 150-600 MHz, "
            "per-step voltage schedule 1.018-1.8 V"
        ),
    )
)
register_machine(
    MachinePreset(
        name="itsy-reconf",
        builder=_build_itsy_reconf,
        clock_table=SA1100_CLOCK_TABLE,
        description=(
            "modified Itsy with costly reconfiguration: 1 ms clock-change "
            "stall at +0.12 W, 500 us voltage sag"
        ),
    )
)
register_machine(
    MachinePreset(
        name="sa2-reconf",
        builder=_build_sa2_reconf,
        clock_table=SA2_CLOCK_TABLE,
        description=(
            "SA-2 with costly reconfiguration: 1 ms clock-change "
            "stall at +0.12 W, 500 us voltage sag"
        ),
    )
)


def _preset(name: str) -> MachinePreset:
    try:
        return MACHINE_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; see 'list-machines'"
        ) from None
