"""The unit of application demand: a mix of core cycles and memory traffic.

A :class:`Work` value describes a fixed amount of computation the way the
SA-1100 sees it: some number of core (non-memory) cycles, some number of
individual-word memory references, and some number of cache-line fills.

The wall-clock duration of a piece of work depends on the clock step,
because the memory components cost more *cycles* at higher frequencies
(Table 3, :mod:`repro.hw.memory`).  This is exactly the mechanism behind the
paper's Figure 9: the same work runs at a sub-linear speedup as frequency
rises, with a plateau between 162.2 and 176.9 MHz.

Work is divisible: when a scheduling quantum expires mid-computation the
kernel consumes the fraction of the work that fit in the elapsed time and
carries the remainder to the next time the process runs, possibly at a
different clock step.  Fractions preserve the component mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.clocksteps import ClockStep
from repro.hw.memory import MemoryTimings


@dataclass(frozen=True)
class Work:
    """An amount of computation, divisible and frequency-sensitive.

    Attributes:
        cpu_cycles: core cycles that scale perfectly with frequency.
        mem_refs: individual-word memory references.
        cache_refs: cache-line fills.
    """

    cpu_cycles: float = 0.0
    mem_refs: float = 0.0
    cache_refs: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_cycles < 0 or self.mem_refs < 0 or self.cache_refs < 0:
            raise ValueError("work components must be non-negative")

    # -- algebra -----------------------------------------------------------------

    def __add__(self, other: "Work") -> "Work":
        return Work(
            cpu_cycles=self.cpu_cycles + other.cpu_cycles,
            mem_refs=self.mem_refs + other.mem_refs,
            cache_refs=self.cache_refs + other.cache_refs,
        )

    def scaled(self, factor: float) -> "Work":
        """Return this work multiplied by ``factor`` (component-wise)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Work(
            cpu_cycles=self.cpu_cycles * factor,
            mem_refs=self.mem_refs * factor,
            cache_refs=self.cache_refs * factor,
        )

    @property
    def is_empty(self) -> bool:
        """True when no work remains (within floating-point tolerance)."""
        return (self.cpu_cycles + self.mem_refs + self.cache_refs) < 1e-9

    # -- timing ------------------------------------------------------------------

    def total_cycles(self, step: ClockStep, timings: MemoryTimings) -> float:
        """Total core cycles this work occupies at clock step ``step``."""
        return (
            self.cpu_cycles
            + self.mem_refs * timings.mem_cycles(step)
            + self.cache_refs * timings.cache_cycles(step)
        )

    def duration_us(self, step: ClockStep, timings: MemoryTimings) -> float:
        """Wall-clock microseconds this work takes at clock step ``step``."""
        return self.total_cycles(step, timings) / step.mhz

    def split_at_us(
        self, elapsed_us: float, step: ClockStep, timings: MemoryTimings
    ) -> "tuple[Work, Work]":
        """Split into (done, remaining) after executing for ``elapsed_us``.

        The split is proportional: execution is modelled as a homogeneous
        blend of the three components, so running 40 % of the wall-clock
        duration completes 40 % of each component.

        Args:
            elapsed_us: time the work actually ran at ``step``.
            step: the clock step it ran at.
            timings: the memory timing model.

        Returns:
            ``(done, remaining)`` with ``done + remaining == self``
            component-wise.  If ``elapsed_us`` covers the full duration the
            remainder is empty.
        """
        if elapsed_us < 0:
            raise ValueError("elapsed time must be non-negative")
        total = self.duration_us(step, timings)
        # Treat sub-nanosecond tails as complete: they are far below one
        # clock cycle and would otherwise accumulate as floating-point
        # residue that can never be scheduled.
        if total <= 0 or elapsed_us >= total - 1e-3:
            return self, Work()
        frac = elapsed_us / total
        done = self.scaled(frac)
        remaining = Work(
            cpu_cycles=self.cpu_cycles - done.cpu_cycles,
            mem_refs=self.mem_refs - done.mem_refs,
            cache_refs=self.cache_refs - done.cache_refs,
        )
        return done, remaining
