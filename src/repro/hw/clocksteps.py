"""The discrete clock steps of the StrongARM SA-1100.

The SA-1100 used in the Itsy supports 11 distinct core clock rates ("clock
steps"), listed in Table 3 of the paper, from 59.0 MHz to 206.4 MHz in
nominally equal increments of ~14.7 MHz.  Clock-scaling policies never pick
an arbitrary frequency: they pick one of these steps, addressed by index
(0 = slowest .. 10 = fastest).

The *speed setting* algorithms of the paper (``one``, ``double``, ``peg``,
see :mod:`repro.core.speed`) are pure index arithmetic over this table.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

#: The 11 SA-1100 clock frequencies of Table 3, in MHz, slowest first.
SA1100_FREQUENCIES_MHZ: Tuple[float, ...] = (
    59.0,
    73.7,
    88.5,
    103.2,
    118.0,
    132.7,
    147.5,
    162.2,
    176.9,
    191.7,
    206.4,
)


@dataclass(frozen=True)
class ClockStep:
    """One discrete clock setting.

    Attributes:
        index: position in the clock table, 0 = slowest.
        mhz: core clock frequency in MHz.
    """

    index: int
    mhz: float

    @property
    def hz(self) -> float:
        """Core clock frequency in Hz."""
        return self.mhz * 1e6

    def cycles_in_us(self, duration_us: float) -> float:
        """Number of core clock cycles elapsing in ``duration_us``.

        One microsecond at ``f`` MHz is exactly ``f`` cycles, so this is
        simply ``duration_us * mhz``.
        """
        return duration_us * self.mhz

    def us_for_cycles(self, cycles: float) -> float:
        """Wall-clock microseconds needed to run ``cycles`` core cycles."""
        return cycles / self.mhz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mhz:.1f}MHz(step {self.index})"


class ClockTable:
    """An ordered table of :class:`ClockStep` values.

    The table is immutable after construction.  It provides the index
    arithmetic used by speed setters and lookups used by policies and the
    measurement harness.
    """

    def __init__(self, frequencies_mhz: Sequence[float]):
        if not frequencies_mhz:
            raise ValueError("clock table needs at least one frequency")
        freqs = list(frequencies_mhz)
        if any(f <= 0 for f in freqs):
            raise ValueError("clock frequencies must be positive")
        if sorted(freqs) != freqs:
            raise ValueError("clock frequencies must be sorted ascending")
        if len(set(freqs)) != len(freqs):
            raise ValueError("clock frequencies must be distinct")
        self._steps: List[ClockStep] = [
            ClockStep(index=i, mhz=f) for i, f in enumerate(freqs)
        ]
        self._freqs = freqs
        self._max_index = len(self._steps) - 1

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[ClockStep]:
        return iter(self._steps)

    def __getitem__(self, index: int) -> ClockStep:
        return self._steps[index]

    # -- lookups -----------------------------------------------------------------

    @property
    def min_step(self) -> ClockStep:
        """The slowest clock step."""
        return self._steps[0]

    @property
    def max_step(self) -> ClockStep:
        """The fastest clock step."""
        return self._steps[-1]

    @property
    def max_index(self) -> int:
        """Index of the fastest clock step."""
        return self._max_index

    def clamp_index(self, index: int) -> int:
        """Clamp ``index`` into the valid step range."""
        if index < 0:
            return 0
        max_index = self._max_index
        return max_index if index > max_index else index

    def step_for_mhz(self, mhz: float) -> ClockStep:
        """Return the step whose frequency equals ``mhz`` (within 0.05 MHz).

        Raises:
            KeyError: if no step matches.
        """
        for step in self._steps:
            if abs(step.mhz - mhz) < 0.05:
                return step
        raise KeyError(f"no clock step at {mhz} MHz")

    def lowest_step_at_least(self, mhz: float) -> ClockStep:
        """Return the slowest step with frequency >= ``mhz``.

        This is the "minimum speed that still meets the demand" lookup used
        by the simple busy-instruction averaging policy of Figure 5.  If the
        demand exceeds the fastest step, the fastest step is returned.
        """
        i = bisect.bisect_left(self._freqs, mhz - 1e-9)
        return self._steps[min(i, self.max_index)]

    def frequencies_mhz(self) -> Tuple[float, ...]:
        """All frequencies in ascending order, in MHz."""
        return tuple(self._freqs)


#: The clock table of the SA-1100 as used in the Itsy (Table 3).
SA1100_CLOCK_TABLE = ClockTable(SA1100_FREQUENCIES_MHZ)
