"""Whole-machine composition: the Itsy pocket computer.

:class:`ItsyMachine` bundles the CPU model, the power model and the battery
interface into the object the kernel simulator drives.  It also carries the
configuration presets used throughout the evaluation (initial clock step,
initial voltage, whether the below-spec 1.23 V rail setting is available).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.hw.clocksteps import SA1100_CLOCK_TABLE, ClockTable
from repro.hw.cpu import CpuModel
from repro.hw.machine import Machine
from repro.hw.memory import SA1100_MEMORY_TIMINGS, MemoryTimings
from repro.hw.power import PowerModel, PowerParameters
from repro.hw.rails import CoreRail, VOLTAGE_HIGH, VOLTAGE_LOW


@dataclass(frozen=True)
class ItsyConfig:
    """Configuration preset for an Itsy unit.

    Attributes:
        initial_mhz: clock frequency at boot (default: fastest step).
        initial_volts: core voltage at boot.
        low_voltage_available: whether the modified 1.23 V rail setting
            exists on this unit (stock units: no).
        low_voltage_max_mhz: fastest clock considered safe at 1.23 V.
    """

    initial_mhz: float = 206.4
    initial_volts: float = VOLTAGE_HIGH
    low_voltage_available: bool = True
    low_voltage_max_mhz: float = 162.2

    def validate(self, table: ClockTable) -> None:
        """Check the preset against a clock table; raise ValueError if bad."""
        table.step_for_mhz(self.initial_mhz)  # raises KeyError -> surfaced
        if self.initial_volts == VOLTAGE_LOW and not self.low_voltage_available:
            raise ValueError("1.23 V requested but unavailable on this unit")


class ItsyMachine(Machine):
    """An Itsy unit: CPU + power model, as the kernel simulator sees it.

    The machine does not advance time itself; the kernel tells it what the
    core is doing and asks for the instantaneous power.  Transition methods
    return their time cost for the kernel to account.
    """

    def __init__(
        self,
        config: ItsyConfig = ItsyConfig(),
        power_params: PowerParameters = PowerParameters(),
        clock_table: ClockTable = SA1100_CLOCK_TABLE,
        timings: MemoryTimings = SA1100_MEMORY_TIMINGS,
    ):
        config.validate(clock_table)
        self.config = config
        rail = CoreRail(low_voltage_max_mhz=config.low_voltage_max_mhz)
        initial_step = clock_table.step_for_mhz(config.initial_mhz)
        cpu = CpuModel(
            clock_table=clock_table,
            timings=timings,
            rail=rail,
            step=initial_step,
        )
        if config.initial_volts != rail.volts:
            rail.set_voltage(config.initial_volts, initial_step)
        super().__init__(cpu, PowerModel(power_params))

    def set_voltage(self, volts: float) -> float:
        """Change the core voltage; returns the settle duration in us.

        Raises:
            ValueError: if the low rail setting is requested on a unit
                without the modification.
        """
        if volts == VOLTAGE_LOW and not self.config.low_voltage_available:
            raise ValueError("this Itsy unit does not support 1.23 V operation")
        return self.cpu.set_voltage(volts)


def stock_itsy(initial_mhz: float = 206.4) -> ItsyMachine:
    """An unmodified Itsy: 1.5 V only."""
    return ItsyMachine(
        ItsyConfig(initial_mhz=initial_mhz, low_voltage_available=False)
    )


def modified_itsy(
    initial_mhz: float = 206.4, initial_volts: float = VOLTAGE_HIGH
) -> ItsyMachine:
    """A WRL-modified Itsy: core rail switchable between 1.5 V and 1.23 V."""
    return ItsyMachine(
        ItsyConfig(initial_mhz=initial_mhz, initial_volts=initial_volts)
    )
