"""Hardware model of the Itsy pocket computer (StrongARM SA-1100).

This package models every hardware property the paper's policies and
measurements depend on:

- :mod:`repro.hw.clocksteps` -- the 11 discrete clock steps of the SA-1100
  (59.0 .. 206.4 MHz) and index arithmetic over them.
- :mod:`repro.hw.memory` -- the frequency-dependent memory timings of
  Table 3 (cycles per single-word reference and per cache-line fill).
- :mod:`repro.hw.work` -- the unit of application demand: a mix of core
  cycles, memory references and cache-line fills, whose wall-clock duration
  depends on the clock step through the memory model.
- :mod:`repro.hw.rails` -- the two power rails (1.5 V / 1.23 V core,
  3.3 V peripherals) and voltage transition behaviour (about 250 us to
  settle downward, effectively instantaneous upward).
- :mod:`repro.hw.power` -- the calibrated power model (core dynamic,
  pad/bus, frequency-tracking system power, fixed peripherals, nap).
- :mod:`repro.hw.cpu` -- the CPU execution model, including the ~200 us
  stall on every clock-frequency change and the "nap" idle mode.
- :mod:`repro.hw.machine` -- the abstract machine interface the kernel
  simulator drives.
- :mod:`repro.hw.itsy` -- the Itsy: whole-machine composition and presets.
- :mod:`repro.hw.sa2` -- the hypothetical SA-2 with true voltage scaling.
- :mod:`repro.hw.machines` -- named machine presets (:class:`MachineSpec`)
  for the sweep/cache layer and the CLI ``--machine`` flag.
"""

from repro.hw.clocksteps import (
    SA1100_CLOCK_TABLE,
    ClockStep,
    ClockTable,
)
from repro.hw.cpu import CoreState, CpuModel, CLOCK_CHANGE_STALL_US
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.machine import Machine
from repro.hw.machines import (
    MACHINE_PRESETS,
    MachinePreset,
    MachineSpec,
    register_machine,
)
from repro.hw.memory import MemoryTimings, SA1100_MEMORY_TIMINGS
from repro.hw.power import PowerModel, PowerParameters
from repro.hw.rails import (
    CoreRail,
    ScheduledRail,
    VoltageError,
    VOLTAGE_HIGH,
    VOLTAGE_IO,
    VOLTAGE_LOW,
)
from repro.hw.sa2 import Sa2Machine
from repro.hw.work import Work

__all__ = [
    "MACHINE_PRESETS",
    "SA1100_CLOCK_TABLE",
    "SA1100_MEMORY_TIMINGS",
    "CLOCK_CHANGE_STALL_US",
    "ClockStep",
    "ClockTable",
    "CoreRail",
    "CoreState",
    "CpuModel",
    "ItsyConfig",
    "ItsyMachine",
    "Machine",
    "MachinePreset",
    "MachineSpec",
    "MemoryTimings",
    "PowerModel",
    "PowerParameters",
    "Sa2Machine",
    "ScheduledRail",
    "VOLTAGE_HIGH",
    "VOLTAGE_IO",
    "VOLTAGE_LOW",
    "VoltageError",
    "Work",
    "register_machine",
]
