"""Hardware model of the Itsy pocket computer (StrongARM SA-1100).

This package models every hardware property the paper's policies and
measurements depend on:

- :mod:`repro.hw.clocksteps` -- the 11 discrete clock steps of the SA-1100
  (59.0 .. 206.4 MHz) and index arithmetic over them.
- :mod:`repro.hw.memory` -- the frequency-dependent memory timings of
  Table 3 (cycles per single-word reference and per cache-line fill).
- :mod:`repro.hw.work` -- the unit of application demand: a mix of core
  cycles, memory references and cache-line fills, whose wall-clock duration
  depends on the clock step through the memory model.
- :mod:`repro.hw.rails` -- the two power rails (1.5 V / 1.23 V core,
  3.3 V peripherals) and voltage transition behaviour (about 250 us to
  settle downward, effectively instantaneous upward).
- :mod:`repro.hw.power` -- the calibrated power model (core dynamic,
  pad/bus, frequency-tracking system power, fixed peripherals, nap).
- :mod:`repro.hw.cpu` -- the CPU execution model, including the ~200 us
  stall on every clock-frequency change and the "nap" idle mode.
- :mod:`repro.hw.itsy` -- whole-machine composition and presets.
"""

from repro.hw.clocksteps import (
    SA1100_CLOCK_TABLE,
    ClockStep,
    ClockTable,
)
from repro.hw.cpu import CoreState, CpuModel, CLOCK_CHANGE_STALL_US
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.memory import MemoryTimings, SA1100_MEMORY_TIMINGS
from repro.hw.power import PowerModel, PowerParameters
from repro.hw.rails import CoreRail, VOLTAGE_HIGH, VOLTAGE_LOW, VOLTAGE_IO
from repro.hw.work import Work

__all__ = [
    "SA1100_CLOCK_TABLE",
    "SA1100_MEMORY_TIMINGS",
    "CLOCK_CHANGE_STALL_US",
    "ClockStep",
    "ClockTable",
    "CoreRail",
    "CoreState",
    "CpuModel",
    "ItsyConfig",
    "ItsyMachine",
    "MemoryTimings",
    "PowerModel",
    "PowerParameters",
    "VOLTAGE_HIGH",
    "VOLTAGE_IO",
    "VOLTAGE_LOW",
    "Work",
]
