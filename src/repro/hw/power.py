"""Calibrated power model of the Itsy.

The paper measures *whole-system* power with a DAQ: the supply current of
the entire Itsy, not just the processor.  The model therefore has four
components:

``fixed``
    Peripherals whose power does not track the core clock: display drive,
    touch screen, audio codec, DRAM self-refresh baseline, regulators.

``system(f)``
    A small component proportional to the core clock frequency (the SA-1100
    memory/LCD controller shares the core clock domain).

``core(f, V, state)``
    The processor itself:

    - *active*: core dynamic power ``c_core * V^2 * f`` plus pad/bus dynamic
      power at the fixed 3.3 V I/O rail, ``c_pad * Vio^2 * f``.  The pad
      term is why the measured processor-power reduction at 1.23 V is only
      about 15 % even though the pure ``V^2`` ratio would predict ~33 %.
    - *nap*: the Linux idle loop stalls the pipeline ("nap" mode); only the
      clock distribution keeps toggling: ``c_nap * V^2 * f``.
    - *off*: zero (used only by the battery "idle power manager" preset).

Calibration (see DESIGN.md section 5): the constants below were fitted by
least squares against all five Table 2 rows of the paper -- the 60 s MPEG
workload gives ~86.0 J at 206.4 MHz/1.5 V, ~80.3 J at a constant
132.7 MHz, ~74.1 J at 132.7 MHz/1.23 V, ~85.3 J under the best heuristic
policy and ~85.0 J with voltage scaling added (each within 0.1 J of the
paper's confidence intervals).  Absolute watts are plausible for the Itsy
(~1.4 W busy) but are not claimed to match the unpublished testbed.

A known tension, inherited from the paper itself: fitting Table 2's row
gaps forces nearly all processor power onto the core rail, so the model's
*processor* power reduction at 1.23 V is ~30 % (close to the pure
``(1.23/1.5)^2`` ratio) rather than the ~15 % the paper quotes in §2.3.
Table 2's system-level 8 % drop, Figure 9's cycle inflation at high clock
rates, and the 15 % processor figure cannot all hold simultaneously in a
``V^2 f`` model; we follow Table 2, the quantitative result.  See
EXPERIMENTS.md for the full argument.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hw.clocksteps import ClockStep
from repro.hw.rails import VOLTAGE_IO


class CoreState(enum.Enum):
    """Execution state of the SA-1100 core, as seen by the power model."""

    ACTIVE = "active"
    NAP = "nap"
    OFF = "off"


@dataclass(frozen=True)
class PowerParameters:
    """Constants of the Itsy power model.

    All per-frequency coefficients are in W/MHz (per volt squared where a
    voltage factor applies); fixed components are in W.
    """

    #: Frequency-independent peripheral power (display, codec, regulators).
    fixed_w: float = 0.993368
    #: System power tracking the core clock (memory/LCD controller).
    system_w_per_mhz: float = 3.5e-5
    #: Core dynamic power coefficient: multiply by V_core^2 * f_mhz.
    core_w_per_mhz_v2: float = 1.059877e-3
    #: Pad/bus dynamic power coefficient: multiply by V_io^2 * f_mhz.
    pad_w_per_mhz_v2: float = 1.781043e-5
    #: Napping-core coefficient (clock distribution): V_core^2 * f_mhz.
    nap_w_per_mhz_v2: float = 3.194628e-4
    #: I/O rail voltage.
    io_volts: float = VOLTAGE_IO

    def __post_init__(self) -> None:
        for name in (
            "fixed_w",
            "system_w_per_mhz",
            "core_w_per_mhz_v2",
            "pad_w_per_mhz_v2",
            "nap_w_per_mhz_v2",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.nap_w_per_mhz_v2 > self.core_w_per_mhz_v2:
            raise ValueError("nap power cannot exceed active core power")


class PowerModel:
    """Computes instantaneous whole-system power for a machine state."""

    def __init__(self, params: PowerParameters = PowerParameters()):
        self.params = params

    # -- component powers ----------------------------------------------------------

    def core_active_w(self, step: ClockStep, core_volts: float) -> float:
        """Processor power while executing instructions."""
        p = self.params
        return (
            p.core_w_per_mhz_v2 * core_volts**2 + p.pad_w_per_mhz_v2 * p.io_volts**2
        ) * step.mhz

    def core_nap_w(self, step: ClockStep, core_volts: float) -> float:
        """Processor power in nap mode (pipeline stalled, clock running)."""
        return self.params.nap_w_per_mhz_v2 * core_volts**2 * step.mhz

    def system_w(self, step: ClockStep) -> float:
        """Clock-tracking system power plus fixed peripheral power."""
        return self.params.fixed_w + self.params.system_w_per_mhz * step.mhz

    # -- totals ---------------------------------------------------------------------

    def total_w(
        self, step: ClockStep, core_volts: float, state: CoreState
    ) -> float:
        """Whole-system instantaneous power for the given machine state.

        Args:
            step: current clock step.
            core_volts: current core rail voltage.
            state: execution state of the core.

        Returns:
            Instantaneous power in watts, as the paper's DAQ would see it at
            the supply.
        """
        base = self.system_w(step)
        if state is CoreState.ACTIVE:
            return base + self.core_active_w(step, core_volts)
        if state is CoreState.NAP:
            return base + self.core_nap_w(step, core_volts)
        if state is CoreState.OFF:
            return base
        raise ValueError(f"unknown core state {state!r}")

    def processor_w(
        self, step: ClockStep, core_volts: float, state: CoreState
    ) -> float:
        """Processor-only power (used to verify the ~15 % claim of §2.3)."""
        if state is CoreState.ACTIVE:
            return self.core_active_w(step, core_volts)
        if state is CoreState.NAP:
            return self.core_nap_w(step, core_volts)
        return 0.0


@dataclass(frozen=True)
class IdleManagerParameters:
    """Power model for the §2.1 battery anecdote's idle configuration.

    When the Itsy sits idle under its integrated power manager, the
    processor core is disabled but devices remain active; the residual power
    tracks the system clock strongly (the paper reports 2 h of battery at a
    206 MHz system clock versus 18 h at 59 MHz).  This is a different
    configuration from the busy-workload measurements (display content,
    device duty cycles), so it gets its own constants.
    """

    device_w: float = 0.040
    clock_w_per_mhz: float = 1.45e-3

    def idle_power_w(self, step: ClockStep) -> float:
        """System power when idling under the power manager at ``step``."""
        return self.device_w + self.clock_w_per_mhz * step.mhz
