"""Frequency-dependent memory timings (Table 3 of the paper).

The Itsy's EDO DRAM has a fixed wall-clock access latency, so the number of
*core cycles* spent per access grows with the clock frequency.  Table 3 of
the paper reports the measured cycle counts for reading an individual word
and for filling a full cache line at each of the 11 clock steps:

    freq (MHz)   59.0 73.7 88.5 103.2 118.0 132.7 147.5 162.2 176.9 191.7 206.4
    cycles/mem     11   11   11    11    13    14    14    15    18    19    20
    cycles/cache   39   39   39    39    41    42    49    50    60    61    69

Two consequences the paper highlights:

1. processor *throughput* does not scale linearly with frequency for
   memory-bound code, and
2. there is a distinct jump between 162.2 MHz and 176.9 MHz (mem 15 -> 18,
   cache 50 -> 60) that produces the utilization plateau of Figure 9.

This module captures the table and exposes the cycle-cost arithmetic the CPU
model uses to convert application work into wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.hw.clocksteps import SA1100_FREQUENCIES_MHZ, ClockStep

#: Table 3: cycles per individual-word memory reference, slowest step first.
SA1100_CYCLES_PER_MEM_REF: Tuple[int, ...] = (11, 11, 11, 11, 13, 14, 14, 15, 18, 19, 20)

#: Table 3: cycles per full cache-line reference, slowest step first.
SA1100_CYCLES_PER_CACHE_REF: Tuple[int, ...] = (39, 39, 39, 39, 41, 42, 49, 50, 60, 61, 69)


@dataclass(frozen=True)
class MemoryTimings:
    """Cycle cost of memory operations at each clock step.

    Attributes:
        cycles_per_mem_ref: core cycles to read one individual word, indexed
            by clock-step index.
        cycles_per_cache_ref: core cycles to read one full cache line,
            indexed by clock-step index.
    """

    cycles_per_mem_ref: Tuple[int, ...]
    cycles_per_cache_ref: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.cycles_per_mem_ref) != len(self.cycles_per_cache_ref):
            raise ValueError("memory timing tables must have equal length")
        if not self.cycles_per_mem_ref:
            raise ValueError("memory timing tables must be non-empty")
        if any(c <= 0 for c in self.cycles_per_mem_ref):
            raise ValueError("cycles per memory reference must be positive")
        if any(c <= 0 for c in self.cycles_per_cache_ref):
            raise ValueError("cycles per cache reference must be positive")
        for mem, cache in zip(self.cycles_per_mem_ref, self.cycles_per_cache_ref):
            if cache < mem:
                raise ValueError(
                    "a cache-line fill cannot be cheaper than a single word"
                )

    @property
    def num_steps(self) -> int:
        """Number of clock steps covered by the table."""
        return len(self.cycles_per_mem_ref)

    def mem_cycles(self, step: ClockStep) -> int:
        """Core cycles per individual-word memory reference at ``step``."""
        return self.cycles_per_mem_ref[step.index]

    def cache_cycles(self, step: ClockStep) -> int:
        """Core cycles per cache-line reference at ``step``."""
        return self.cycles_per_cache_ref[step.index]

    def mem_latency_us(self, step: ClockStep) -> float:
        """Wall-clock latency of one individual-word reference, microseconds."""
        return self.mem_cycles(step) / step.mhz

    def cache_latency_us(self, step: ClockStep) -> float:
        """Wall-clock latency of one cache-line reference, microseconds."""
        return self.cache_cycles(step) / step.mhz

    def as_table(self, frequencies_mhz: Sequence[float] = SA1100_FREQUENCIES_MHZ) -> Dict[float, Tuple[int, int]]:
        """Render the timings as ``{freq_mhz: (mem_cycles, cache_cycles)}``.

        This is the exact content of Table 3 and is what the Table 3
        benchmark prints.
        """
        if len(frequencies_mhz) != self.num_steps:
            raise ValueError("frequency list does not match table length")
        return {
            f: (self.cycles_per_mem_ref[i], self.cycles_per_cache_ref[i])
            for i, f in enumerate(frequencies_mhz)
        }


#: The measured SA-1100 / EDO DRAM timings of Table 3.
SA1100_MEMORY_TIMINGS = MemoryTimings(
    cycles_per_mem_ref=SA1100_CYCLES_PER_MEM_REF,
    cycles_per_cache_ref=SA1100_CYCLES_PER_CACHE_REF,
)


def fixed_latency_timings(
    frequencies_mhz: Sequence[float],
    mem_latency_ns: float,
    cache_latency_ns: float,
    mem_overhead_cycles: int = 0,
    cache_overhead_cycles: int = 0,
) -> MemoryTimings:
    """Build a timing table for a fixed-wall-clock-latency memory system.

    A DRAM access that takes ``latency_ns`` of wall-clock time costs
    ``ceil(latency_ns * f)`` core cycles at frequency ``f`` plus a fixed
    per-access core overhead -- the first-principles model behind tables
    like Table 3.  (The real Table 3 is *measured* and includes page-mode
    effects the simple model misses; see the tests for how close the fit
    gets.)  Useful for building machines other than the Itsy.
    """
    if mem_latency_ns <= 0 or cache_latency_ns <= 0:
        raise ValueError("latencies must be positive")

    def cycles(latency_ns: float, overhead: int, f_mhz: float) -> int:
        import math

        return max(1, math.ceil(latency_ns * f_mhz / 1000.0) + overhead)

    return MemoryTimings(
        cycles_per_mem_ref=tuple(
            cycles(mem_latency_ns, mem_overhead_cycles, f) for f in frequencies_mhz
        ),
        cycles_per_cache_ref=tuple(
            cycles(cache_latency_ns, cache_overhead_cycles, f)
            for f in frequencies_mhz
        ),
    )
