"""Fast-path simulation core: the reference kernel's hot loop, flattened.

:class:`FastKernel` is a drop-in replacement for
:class:`~repro.kernel.scheduler.Kernel` that produces **bitwise-identical**
results while eliminating the per-quantum overheads of the pluggable
recorder machinery:

- the recorder sink chain is precomposed into one flat local closure
  (``emit``) that applies the timeline/energy-meter segment-merge
  arithmetic directly, so a power segment costs a function call and a few
  float compares instead of a fan-out over bound methods;
- per-quantum state is buffered as plain tuples in preallocated lists;
  :class:`~repro.traces.schema.QuantumRecord` /
  :class:`~repro.kernel.recorders.QuantumStats` objects are materialized
  once, at run end, from those buffers;
- process slices run against cached generator/step state (``next(gen)``,
  local memory-timing cycle counts, precomputed active/nap watts) instead
  of attribute lookups through ``Process`` / ``CpuModel`` /
  ``DvfsEngine`` indirection — the caches are refreshed at the only place
  the step or rail can change, a governor-driven ``DvfsEngine.apply``;
- idle quanta take a slice-coalescing fast path: one nap segment per
  quantum with no process dispatch, and the pending-segment merge
  coalesces runs of idle (or single-process) quanta into a single
  timeline segment, exactly as the reference recorders would;
- extra observers (``extra_recorders``) attach through a replay-at-end
  tap layer: the hot loop keeps buffering plain tuples, and each tap's
  overridden hooks are fed the complete per-stream event sequences once
  the loop finishes, before ``contribute``.  Because the stock observers
  (:class:`~repro.obs.trace.TraceRecorder`,
  :class:`~repro.obs.metrics.KernelMetricsRecorder`, every
  :mod:`~repro.kernel.recorders` recorder) buffer per-stream and reduce
  at ``contribute``, replay is indistinguishable from live dispatch and
  observed results stay bitwise identical (see
  :class:`~repro.kernel.recorders.RunRecorder` for the stream-ordering
  contract).

Equivalence is maintained operation for operation: every float add,
multiply, comparison and tolerance below is transcribed from the
reference kernel (`scheduler.py`), the recorders (`recorders.py`), the
timeline (`traces/schema.py`) and the work model (`hw/work.py`), in the
same order and associativity.  The reference kernel remains the oracle;
``tests/kernel/test_fastpath.py`` drives every catalog policy × workload
× machine through both cores and asserts bitwise equality.

Rare paths (rail-sag power splits, DVFS stalls) fall back to the
reference implementations so the tricky sequencing logic is never
duplicated.
"""

from __future__ import annotations

import gc
from time import perf_counter
from typing import Iterable, List, Optional

from repro.hw.machine import Machine
from repro.hw.power import CoreState
from repro.kernel.governor import Governor, TickInfo
from repro.kernel.process import (
    Compute,
    Exit,
    ProcessState,
    Sleep,
    SleepUntil,
    SpinUntil,
    Yield,
)
from repro.kernel.recorders import (
    RECORDING_FULL,
    RECORDING_MINIMAL,
    EnergyTotals,
    QuantumStats,
    RunRecorder,
)
from repro.kernel.scheduler import (
    _EPS,
    _MAX_ZERO_PROGRESS_ACTIONS,
    Kernel,
    KernelConfig,
    KernelRun,
)
from repro.traces.schema import (
    FreqChange,
    PowerTimeline,
    QuantumRecord,
    SchedDecision,
    VoltChange,
)


#: Cached ``(PHASE_REDUCE, record_kernel_phase)`` pair; see :func:`_phase_hook`.
_PHASE_HOOK: Optional[tuple] = None


def _phase_hook() -> tuple:
    """The phase-profile stamp for the bulk-tap replay, imported lazily.

    The kernel must not import the observability package at module load
    (``repro.obs`` pulls measurement modules that import the kernel
    back), so the first tap replay resolves
    :func:`repro.obs.profile.record_kernel_phase` — a single ``None``
    check when no profiled sweep cell armed the stamp sink — and caches
    it for every later run.
    """
    global _PHASE_HOOK
    if _PHASE_HOOK is None:
        from repro.obs.profile import PHASE_REDUCE, record_kernel_phase
        _PHASE_HOOK = (PHASE_REDUCE, record_kernel_phase)
    return _PHASE_HOOK


def _stats_from_rows(rows: List[tuple]) -> QuantumStats:
    """Streaming quantum aggregates from the fast core's row buffer.

    Mirrors :class:`~repro.kernel.recorders.QuantumStatsRecorder`: the
    utilization sum adds per-quantum values in arrival order (the same
    left-to-right float summation as the full-log mean), so the result is
    bitwise equal to what the reference recorder would have produced.
    """
    usum = 0.0
    by_step: dict = {}
    mhz_by_step: dict = {}
    for (_t, _b, u, si, m, _v) in rows:
        usum += u
        by_step[si] = by_step.get(si, 0) + 1
        mhz_by_step[si] = m
    last = rows[-1] if rows else None
    return QuantumStats(
        count=len(rows),
        utilization_sum=usum,
        quanta_by_step=by_step,
        mhz_by_step=mhz_by_step,
        final_step_index=last[3] if last else 0,
        final_mhz=last[4] if last else 0.0,
        final_volts=last[5] if last else 0.0,
    )


class FastRun(KernelRun):
    """A :class:`KernelRun` whose quantum log materializes on demand.

    The fast core buffers quanta as plain tuples; energy-only consumers
    (sweep cells, benchmarks) never read ``run.quanta``, so the
    :class:`~repro.traces.schema.QuantumRecord` objects are built lazily
    on first access instead of unconditionally at run end.  Aggregate
    consumers (``CellResult.from_experiment``, ``mean_utilization``) get
    a :class:`~repro.kernel.recorders.QuantumStats` derived from the raw
    rows even under full recording, so summarizing a run never forces
    the record objects into existence at all.
    """

    _rows: Optional[List[tuple]] = None
    _quantum_us: float = 0.0
    _stats_cache: Optional[QuantumStats] = None

    @property
    def quantum_stats(self) -> Optional[QuantumStats]:
        stats = self._stats_cache
        if stats is None and self._rows is not None:
            stats = _stats_from_rows(self._rows)
            self._stats_cache = stats
        return stats

    @quantum_stats.setter
    def quantum_stats(self, value: Optional[QuantumStats]) -> None:
        self._stats_cache = value

    def mean_utilization(self) -> float:
        if self._rows is not None:
            return self.quantum_stats.mean_utilization()
        return super().mean_utilization()

    @property
    def quanta(self) -> List[QuantumRecord]:
        rows = self._rows
        if rows is not None:
            q = self._quantum_us
            self._quanta = [
                QuantumRecord(
                    end_us=t,
                    busy_us=b,
                    quantum_us=q,
                    step_index=si,
                    mhz=m,
                    volts=v,
                )
                for (t, b, _u, si, m, v) in rows
            ]
            self._rows = None
        return self._quanta

    @quanta.setter
    def quanta(self, value: List[QuantumRecord]) -> None:
        self._quanta = value
        self._rows = None


class FastKernel(Kernel):
    """The fast-path core.  Same contract as :class:`Kernel`, one run only.

    Instead of a recorder list it takes a ``recording`` mode name
    (``"full"`` / ``"minimal"``) and materializes the corresponding
    :class:`~repro.kernel.scheduler.KernelRun` fields itself at run end.
    Extra observers (``extra_recorders``) attach as *taps*: the hot loop
    stays flat, and each tap's overridden hooks are replayed from the
    buffered event streams once the run finishes (power segments,
    quantum records, scheduler decisions, frequency/voltage changes),
    followed by ``contribute`` — the same per-stream sequences the
    reference kernel dispatches live, so observed results are bitwise
    identical on either backend.
    """

    def __init__(
        self,
        machine: Machine,
        governor: Optional[Governor] = None,
        config: Optional[KernelConfig] = None,
        recording: str = RECORDING_FULL,
        extra_recorders: Optional[Iterable[RunRecorder]] = None,
    ):
        if recording not in (RECORDING_FULL, RECORDING_MINIMAL):
            raise ValueError(
                f"unknown recording mode {recording!r}; "
                f"expected {RECORDING_FULL!r} or {RECORDING_MINIMAL!r}"
            )
        super().__init__(machine, governor=governor, config=config, recorders=())
        self.recording = recording
        self._fp_freq: List[FreqChange] = []
        self._fp_volt: List[VoltChange] = []
        self._fp_emit = None
        self._fp_pw: dict = {}  # (step index, volts, state) -> watts
        # Observer taps: partition overridden hooks exactly like the
        # reference kernel's sink lists (class-attribute detection,
        # instance-fetched dispatch), fed by replay at run end.
        self._taps: List[RunRecorder] = (
            list(extra_recorders) if extra_recorders is not None else []
        )
        base = RunRecorder
        self._tap_power = [
            r.on_power for r in self._taps
            if type(r).on_power is not base.on_power
        ]
        # Taps offering the bulk replay hooks take the whole row buffer
        # at once; the rest get the per-record stream.  A tap never sees
        # both forms of the same stream.
        self._tap_quantum_bulk = [
            r.replay_quantum_rows for r in self._taps
            if type(r).replay_quantum_rows is not base.replay_quantum_rows
        ]
        self._tap_quantum = [
            r.on_quantum for r in self._taps
            if type(r).on_quantum is not base.on_quantum
            and type(r).replay_quantum_rows is base.replay_quantum_rows
        ]
        self._tap_sched_bulk = [
            r.replay_sched_rows for r in self._taps
            if type(r).replay_sched_rows is not base.replay_sched_rows
        ]
        self._tap_sched = [
            r.on_sched_decision for r in self._taps
            if type(r).on_sched_decision is not base.on_sched_decision
            and type(r).replay_sched_rows is base.replay_sched_rows
        ]
        self._tap_freq = [
            r.on_freq_change for r in self._taps
            if type(r).on_freq_change is not base.on_freq_change
        ]
        self._tap_volt = [
            r.on_volt_change for r in self._taps
            if type(r).on_volt_change is not base.on_volt_change
        ]

    # -- cold-path power recording (rail sag, DVFS stalls) ----------------------------

    def _record_power(
        self,
        state: CoreState,
        start_us: float,
        end_us: float,
        extra_w: float = 0.0,
    ) -> None:
        # Same gate, sag split and watt lookups as the reference kernel's
        # _record_power; segments land in the flat emit closure.  Watts
        # are a pure function of (step, volts, core state), so the model
        # evaluations are cached -- DVFS stalls and sag windows hit this
        # path ~1000 times per run under a busy interval policy.  The
        # extra_w term (reconfiguration power during stalls) is added
        # after the cache lookup with the same base + extra arithmetic as
        # the reference kernel, keeping the cores bitwise equal.
        if end_us <= start_us + _EPS:
            return
        emit = self._fp_emit
        if emit is None:  # pragma: no cover - defensive (not running)
            return
        machine = self.machine
        cpu = machine.cpu
        dvfs = self.dvfs
        pw = self._fp_pw
        if start_us < dvfs.sag_until_us - _EPS:
            split = min(end_us, dvfs.sag_until_us)
            key = (cpu.step.index, dvfs.sag_volts, state)
            watts = pw.get(key)
            if watts is None:
                watts = machine.power.total_w(machine.step, dvfs.sag_volts, state)
                pw[key] = watts
            if extra_w:
                watts = watts + extra_w
            emit(start_us, split, watts)
            if end_us <= split + _EPS:
                return
            start_us = split
        key = (cpu.step.index, cpu.volts, state)
        watts = pw.get(key)
        if watts is None:
            watts = machine.power_w(state)
            pw[key] = watts
        if extra_w:
            watts = watts + extra_w
        emit(start_us, end_us, watts)

    def emit_freq_change(self, change: FreqChange) -> None:
        self._fp_freq.append(change)

    def emit_volt_change(self, change: VoltChange) -> None:
        self._fp_volt.append(change)

    # -- main loop --------------------------------------------------------------------

    def run(self, duration_us: float) -> KernelRun:
        # The hot loop allocates ~10^5 short-lived tuples per simulated
        # minute, none of which form reference cycles, so the cyclic
        # collector contributes only pauses here.  Pause it for the
        # duration of the run (plain reference counting still frees
        # everything) and restore it on the way out, even on error.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return self._run_impl(duration_us)
        finally:
            if was_enabled:
                gc.enable()

    def _run_impl(self, duration_us: float) -> KernelRun:  # noqa: C901
        n_quanta, end_us = self._begin_run(duration_us)
        governor = self.governor
        config = self.config
        q = config.quantum_us

        machine = self.machine
        cpu = machine.cpu
        timings = cpu.timings
        dvfs = self.dvfs
        max_step_index = machine.clock_table.max_index
        overhead = config.sched_overhead_us
        idle_pid = self.IDLE_PID

        ACTIVE = CoreState.ACTIVE
        NAP = CoreState.NAP
        RUNNABLE = ProcessState.RUNNABLE
        SLEEPING = ProcessState.SLEEPING
        EXITED = ProcessState.EXITED

        # Flat power sink: PowerTimeline.record / EnergyMeterRecorder.on_power
        # collapsed into one closure over a merged segment list.  Same
        # zero-length skip and adjacent-equal-power merge tolerances.
        segs: List[tuple] = []
        segs_append = segs.append
        pend = [False, 0.0, 0.0, 0.0]  # pending, start, end, watts

        def emit(start: float, end: float, watts: float) -> None:
            if end <= start + 1e-9:
                return
            if pend[0]:
                # abs(a - b) < tol, spelled as a chained comparison so the
                # hot path makes no builtin calls; same truth value.
                gap = pend[2] - start
                dw = pend[3] - watts
                if -1e-6 < gap < 1e-6 and -1e-12 < dw < 1e-12:
                    pend[2] = end
                    return
                segs_append((pend[1], pend[2], pend[3]))
            else:
                pend[0] = True
            pend[1] = start
            pend[2] = end
            pend[3] = watts

        self._fp_emit = emit
        record_power = self._record_power  # cold path (sag window active)

        # Preallocated quantum buffer: (end, busy, util, step_index, mhz, volts)
        rows: List[tuple] = [None] * n_quanta  # type: ignore[list-item]
        n_rows = n_quanta
        ri = 0
        # Scheduler decisions are buffered whenever anything will read
        # them: the configured sched log, or an attached tap overriding
        # on_sched_decision (the reference kernel likewise dispatches to
        # sched sinks regardless of the log setting).
        sched_rows: Optional[List[tuple]] = (
            []
            if (
                config.record_sched_log
                or self._tap_sched
                or self._tap_sched_bulk
            )
            else None
        )
        sched_append = sched_rows.append if sched_rows is not None else None

        runq = self._runq
        runq_popleft = runq.popleft
        runq_append = runq.append
        sleepers = self._sleepers
        sleepers_append = sleepers.append
        busy_by_pid = self._busy_by_pid
        bbp_get = busy_by_pid.get

        # Pending Compute state lives as raw component tuples on the process
        # so slices never construct intermediate Work objects.
        for p in self._procs.values():
            p._fp_work = None  # type: ignore[attr-defined]

        # Cached step/rail state; only a governor-driven dvfs.apply can
        # invalidate these, and that happens in exactly one place below.
        step = cpu.step
        mhz = step.mhz
        mem_c = timings.mem_cycles(step)
        cache_c = timings.cache_cycles(step)
        active_w = machine.power_w(ACTIVE)
        nap_w = machine.power_w(NAP)
        sag_until = dvfs.sag_until_us
        # step/voltage in effect for the current quantum (constant within one)
        q_step_index = step.index
        q_mhz = step.mhz
        q_volts = cpu.volts

        # Memory timings and power draws are pure functions of the
        # (step, rail voltage) pair; interval policies bounce between a
        # couple of states thousands of times per run, so cache the
        # lookups per pair instead of recomputing them on every apply.
        state_cache: dict = {}
        state_cache[(step.index, q_volts)] = (mem_c, cache_c, active_w, nap_w)

        inf = float("inf")
        next_wake = inf  # earliest sleeper wake time (skip scans otherwise)
        tickinfo_new = TickInfo.__new__
        gov_live = governor is not None
        gov_inert_after_none = gov_live and governor.inert_after_none

        # Streaming quantum aggregates (QuantumStatsRecorder arithmetic):
        # the utilization sum adds in arrival order; per-step counts are
        # tracked run-length style since the step only changes at a
        # governor-driven dvfs.apply.
        usum = 0.0
        by_step: dict = {}
        mhz_by_step: dict = {q_step_index: q_mhz}
        cur_si = q_step_index
        cur_cnt = 0

        now = self._now
        busy = self._busy_us
        next_tick = q
        stuck = 0
        last_now = -1.0

        while now < end_us - _EPS:
            if now <= last_now + _EPS:
                stuck += 1
                if stuck > _MAX_ZERO_PROGRESS_ACTIONS:
                    raise RuntimeError(
                        f"simulation makes no progress at t={now:.1f} us"
                    )
            else:
                stuck = 0
                last_now = now

            proc = None
            while runq:
                cand = runq_popleft()
                if cand.state is RUNNABLE:
                    proc = cand
                    break

            if proc is None:
                # idle fast path: one nap segment, no process dispatch.
                if sched_append is not None:
                    sched_append((now, idle_pid, "idle", mhz))
                if next_tick > now + _EPS:
                    if now < sag_until - _EPS:
                        record_power(NAP, now, next_tick)
                    else:
                        gap = pend[2] - now
                        dw = pend[3] - nap_w
                        if pend[0] and -1e-6 < gap < 1e-6 and -1e-12 < dw < 1e-12:
                            pend[2] = next_tick  # inlined emit merge
                        else:
                            emit(now, next_tick, nap_w)
                now = next_tick
            else:
                if sched_append is not None:
                    sched_append((now, proc.pid, proc.name, mhz))
                # -- inlined _run_process(proc, next_tick) --------------------
                limit = next_tick
                zero_progress = 0
                pid = proc.pid
                ctx = proc.context
                gen = proc._gen
                while now < limit - _EPS:
                    work = proc._fp_work  # type: ignore[attr-defined]
                    if work is not None:
                        wc, wm, wca = work
                        duration = (wc + wm * mem_c + wca * cache_c) / mhz
                        if duration <= 1e-3:
                            # sub-nanosecond tail: complete instantly
                            proc._fp_work = None
                            zero_progress = 0
                            continue
                        slice_end = now + duration
                        if slice_end > limit:
                            slice_end = limit
                        elapsed = slice_end - now
                        if elapsed <= 0:  # pragma: no cover - defensive
                            if (wc + wm + wca) < 1e-9:
                                proc._fp_work = None
                            zero_progress = 0
                            continue
                        if slice_end > now + _EPS:
                            if now < sag_until - _EPS:
                                record_power(ACTIVE, now, slice_end)
                            else:
                                gap = pend[2] - now
                                dw = pend[3] - active_w
                                if pend[0] and -1e-6 < gap < 1e-6 and -1e-12 < dw < 1e-12:
                                    pend[2] = slice_end  # inlined emit merge
                                else:
                                    emit(now, slice_end, active_w)
                        busy += elapsed
                        busy_by_pid[pid] = bbp_get(pid, 0.0) + elapsed
                        if elapsed >= duration - 1e-3:
                            proc._fp_work = None
                        else:
                            # Work.split_at_us, component-wise
                            frac = elapsed / duration
                            rc = wc - wc * frac
                            rm = wm - wm * frac
                            rca = wca - wca * frac
                            if (rc + rm + rca) < 1e-9:
                                proc._fp_work = None
                            else:
                                proc._fp_work = (rc, rm, rca)
                        now = slice_end
                        zero_progress = 0
                        continue
                    su = proc.spin_until_us
                    if su is not None:
                        if su <= now + _EPS:
                            proc.spin_until_us = None
                            continue
                        target = su if su < limit else limit
                        if target > now:
                            if target > now + _EPS:
                                if now < sag_until - _EPS:
                                    record_power(ACTIVE, now, target)
                                else:
                                    gap = pend[2] - now
                                    dw = pend[3] - active_w
                                    if pend[0] and -1e-6 < gap < 1e-6 and -1e-12 < dw < 1e-12:
                                        pend[2] = target  # inlined emit merge
                                    else:
                                        emit(now, target, active_w)
                            busy += target - now
                            busy_by_pid[pid] = bbp_get(pid, 0.0) + target - now
                            now = target
                        if su <= now + _EPS:
                            proc.spin_until_us = None
                        zero_progress = 0
                        continue

                    ctx.now_us = now
                    try:
                        action = next(gen)
                    except StopIteration:
                        action = None
                    if action is None:
                        proc.state = EXITED
                        break
                    acls = action.__class__
                    if acls is Compute:
                        aw = action.work
                        wc = aw.cpu_cycles
                        wm = aw.mem_refs
                        wca = aw.cache_refs
                        if (wc + wm + wca) < 1e-9:
                            zero_progress += 1
                        else:
                            proc._fp_work = (wc, wm, wca)
                    elif acls is SpinUntil:
                        until = action.until_us
                        proc.spin_until_us = until
                        if until <= now + _EPS:
                            zero_progress += 1
                    elif acls is Sleep:
                        if action.duration_us <= _EPS:
                            runq_append(proc)
                            break
                        wake = now + action.duration_us
                        ticks = int(wake // q)
                        tick_wake = ticks * q
                        if tick_wake < wake - _EPS:
                            tick_wake += q
                        if tick_wake <= now + _EPS:
                            tick_wake += q
                        proc.state = SLEEPING
                        proc.wake_us = tick_wake
                        sleepers_append(proc)
                        if tick_wake < next_wake:
                            next_wake = tick_wake
                        break
                    elif acls is SleepUntil:
                        w = action.wake_us
                        wake = w if w > now else now
                        ticks = int(wake // q)
                        tick_wake = ticks * q
                        if tick_wake < wake - _EPS:
                            tick_wake += q
                        if tick_wake <= now + _EPS:
                            tick_wake += q
                        proc.state = SLEEPING
                        proc.wake_us = tick_wake
                        sleepers_append(proc)
                        if tick_wake < next_wake:
                            next_wake = tick_wake
                        break
                    elif acls is Yield:
                        runq_append(proc)
                        break
                    elif acls is Exit:
                        proc.state = EXITED
                        break
                    else:
                        # Subclassed actions: replay the oracle's
                        # isinstance chain (order matters for subclasses
                        # of several action types).
                        self._now = now
                        self._busy_us = busy
                        if isinstance(action, Exit):
                            proc.state = EXITED
                            break
                        if isinstance(action, Compute):
                            aw = action.work
                            if not aw.is_empty:
                                proc._fp_work = (
                                    aw.cpu_cycles,
                                    aw.mem_refs,
                                    aw.cache_refs,
                                )
                            else:
                                zero_progress += 1
                        elif isinstance(action, SpinUntil):
                            until = action.until_us
                            proc.spin_until_us = until
                            if until <= now + _EPS:
                                zero_progress += 1
                        elif isinstance(action, Sleep):
                            if action.duration_us <= _EPS:
                                runq_append(proc)
                                break
                            self._block(proc, now + action.duration_us)
                            if proc.wake_us < next_wake:
                                next_wake = proc.wake_us
                            break
                        elif isinstance(action, SleepUntil):
                            self._block(proc, max(action.wake_us, now))
                            if proc.wake_us < next_wake:
                                next_wake = proc.wake_us
                            break
                        elif isinstance(action, Yield):
                            runq_append(proc)
                            break
                        else:  # pragma: no cover - defensive
                            raise TypeError(f"unknown process action {action!r}")

                    if zero_progress > _MAX_ZERO_PROGRESS_ACTIONS:
                        raise RuntimeError(
                            f"process {proc.name} (pid {proc.pid}) makes no "
                            f"progress at t={now:.1f} us"
                        )
                else:
                    # quantum expired with the process runnable: round robin
                    runq_append(proc)

            if now >= next_tick - _EPS:
                # -- inlined _service_tick(next_tick, ...) --------------------
                tick = next_tick
                now = tick
                busy_c = busy if busy < q else q
                util = busy_c / q
                if util > 1.0:
                    util = 1.0
                elif util < 0.0:
                    util = 0.0
                row = (tick, busy_c, util, q_step_index, q_mhz, q_volts)
                if ri < n_rows:
                    rows[ri] = row
                else:  # pragma: no cover - quantum drift past the estimate
                    rows.append(row)
                ri += 1
                busy = 0.0
                usum += util
                if q_step_index == cur_si:
                    cur_cnt += 1
                else:
                    by_step[cur_si] = by_step.get(cur_si, 0) + cur_cnt
                    cur_si = q_step_index
                    mhz_by_step[cur_si] = q_mhz
                    cur_cnt = 1
                if next_tick >= end_us - _EPS:  # final tick: just close it
                    next_tick += q
                    continue

                if sleepers and next_wake <= tick + _EPS:
                    due = [
                        p
                        for p in sleepers
                        if p.wake_us is not None and p.wake_us <= tick + _EPS
                    ]
                    if due:
                        due.sort(key=_wake_key)
                        for p in due:
                            p.state = RUNNABLE
                            p.wake_us = None
                            runq_append(p)
                        # in-place so sleepers_append stays valid
                        sleepers[:] = [p for p in sleepers if p.state is SLEEPING]
                    next_wake = inf
                    for p in sleepers:
                        if p.wake_us is not None and p.wake_us < next_wake:
                            next_wake = p.wake_us

                if overhead > 0:
                    oend = now + overhead
                    if oend > now + _EPS:
                        if now < sag_until - _EPS:
                            record_power(ACTIVE, now, oend)
                        else:
                            gap = pend[2] - now
                            dw = pend[3] - active_w
                            if pend[0] and -1e-6 < gap < 1e-6 and -1e-12 < dw < 1e-12:
                                pend[2] = oend  # inlined emit merge
                            else:
                                emit(now, oend, active_w)
                    busy += overhead
                    now = oend

                if gov_live:
                    # Build the frozen TickInfo through __dict__ to skip
                    # eight object.__setattr__ calls per tick; the result
                    # is indistinguishable from normal construction.
                    info = tickinfo_new(TickInfo)
                    info.__dict__.update(
                        now_us=tick,
                        utilization=util,
                        busy_us=busy_c,
                        quantum_us=q,
                        step_index=q_step_index,
                        mhz=q_mhz,
                        volts=q_volts,
                        max_step_index=max_step_index,
                    )
                    request = governor.on_tick(info)
                    if request is None:
                        # Inert governors answer None forever once they
                        # have settled; stop consulting them.  (The
                        # reference kernel keeps calling -- and keeps
                        # getting None -- so the runs stay identical.)
                        if gov_inert_after_none:
                            gov_live = False
                    elif not request.is_noop:
                        # flush hot state: apply() stalls/emits through the
                        # host interface, then refresh every cache the step
                        # or rail change can invalidate.
                        self._now = now
                        self._busy_us = busy
                        dvfs.apply(request, self)
                        now = self._now
                        busy = self._busy_us
                        step = cpu.step
                        mhz = step.mhz
                        key = (step.index, cpu.volts)
                        cached = state_cache.get(key)
                        if cached is None:
                            cached = (
                                timings.mem_cycles(step),
                                timings.cache_cycles(step),
                                machine.power_w(ACTIVE),
                                machine.power_w(NAP),
                            )
                            state_cache[key] = cached
                        mem_c, cache_c, active_w, nap_w = cached
                        sag_until = dvfs.sag_until_us

                q_step_index = step.index
                q_mhz = step.mhz
                q_volts = cpu.volts
                next_tick += q

        self._now = now
        self._busy_us = busy
        if pend[0]:
            segs_append((pend[1], pend[2], pend[3]))
            pend[0] = False
        del rows[ri:]

        if cur_cnt:
            by_step[cur_si] = by_step.get(cur_si, 0) + cur_cnt
        last = rows[-1] if rows else None
        stats = QuantumStats(
            count=len(rows),
            utilization_sum=usum,
            quanta_by_step=by_step,
            mhz_by_step=mhz_by_step if rows else {},
            final_step_index=last[3] if last else 0,
            final_mhz=last[4] if last else 0.0,
            final_volts=last[5] if last else 0.0,
        )

        run = self._materialize_run(FastRun, end_us)
        run.quantum_stats = stats
        if self.recording == RECORDING_FULL:
            timeline = PowerTimeline()
            timeline._segments = segs
            run.timeline = timeline
            run._rows = rows
            run._quantum_us = q
            run.freq_changes = self._fp_freq
            run.volt_changes = self._fp_volt
        else:
            # EnergyMeterRecorder.totals(): same per-segment w*dt summation
            energy = 0.0
            for (a, b, w) in segs:
                energy += w * (b - a) * 1e-6
            run.energy = EnergyTotals(
                energy_j=energy,
                start_us=segs[0][0] if segs else 0.0,
                end_us=segs[-1][1] if segs else 0.0,
            )
        if config.record_sched_log and sched_rows is not None:
            run.sched_log = [SchedDecision(*row) for row in sched_rows]
        if self._taps:
            phase, stamp = _phase_hook()
            t0 = perf_counter()
            self._replay_taps(run, rows, segs, sched_rows)
            stamp(phase, t0, perf_counter())
        return run

    def _replay_taps(
        self,
        run: FastRun,
        rows: List[tuple],
        segs: List[tuple],
        sched_rows: Optional[List[tuple]],
    ) -> None:
        """Feed attached observer taps the buffered event streams.

        Each stream is replayed in event order to the taps that override
        its hook — the identical per-stream sequences the reference
        kernel dispatches live (power segments arrive pre-merged, which
        the merge arithmetic makes indistinguishable from live dispatch
        for any merging consumer) — then every tap contributes to the
        finished run, exactly as the reference kernel's recorder loop
        does after its stock set.  Taps implementing the bulk hooks
        (:meth:`RunRecorder.replay_quantum_rows` /
        :meth:`~RunRecorder.replay_sched_rows`) get the raw row buffers
        instead, skipping record materialization entirely — the bulk
        contract obliges them to reduce the rows bitwise-identically.
        """
        if self._tap_quantum_bulk:
            q = self.config.quantum_us
            for bulk in self._tap_quantum_bulk:
                bulk(rows, q)
        if self._tap_quantum:
            q = self.config.quantum_us
            records = [
                QuantumRecord(
                    end_us=t,
                    busy_us=b,
                    quantum_us=q,
                    step_index=si,
                    mhz=m,
                    volts=v,
                )
                for (t, b, _u, si, m, v) in rows
            ]
            for sink in self._tap_quantum:
                for rec in records:
                    sink(rec)
            if self.recording == RECORDING_FULL:
                # Share the materialized log with the run so a later
                # run.quanta read does not rebuild it from the rows.
                run.quanta = records
        if self._tap_power:
            for sink in self._tap_power:
                for (a, b, w) in segs:
                    sink(a, b, w)
        if sched_rows is not None:
            for bulk in self._tap_sched_bulk:
                bulk(sched_rows)
            for sink in self._tap_sched:
                for (t, pid, name, mhz) in sched_rows:
                    sink(t, pid, name, mhz)
        if self._tap_freq:
            for sink in self._tap_freq:
                for change in self._fp_freq:
                    sink(change)
        if self._tap_volt:
            for sink in self._tap_volt:
                for change in self._fp_volt:
                    sink(change)
        for tap in self._taps:
            tap.contribute(run)


def _wake_key(p) -> tuple:
    return (p.wake_us, p.pid)
