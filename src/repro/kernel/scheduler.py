"""The kernel simulator: Linux-2.0-style scheduling on the Itsy.

Faithful to the paper's modified kernel (§4.3):

- 100 Hz clock interrupt; the scheduler is forced to run every 10 ms
  quantum (the paper sets the per-process counter to 1 each schedule),
  which costs about 6 us per interval (~0.06 % overhead) -- charged here as
  ``sched_overhead_us``;
- the idle process is pid 0 and naps (pipeline stalled) until the next
  clock interrupt;
- non-idle execution time is accumulated per quantum, examined by the
  clock-scaling module on every clock interrupt, then cleared;
- sleep wake-ups have timer-tick (10 ms) granularity, as Linux 2.0 timers
  do, while spinning processes poll the 3.6 MHz timer and stop at
  microsecond precision;
- clock changes stall the CPU ~200 us; voltage drops sag over ~250 us
  (during which the rail, and hence power, is still at the old voltage);
  voltage rises are instantaneous and are applied *before* a frequency
  increase, drops *after* a decrease.

The simulation is event-free in structure: time advances process-slice by
process-slice inside each quantum, then tick bookkeeping runs.  All times
are float microseconds; quanta are exact multiples of ``quantum_us``.

The class is a lean scheduling core: voltage/frequency sequencing lives in
:class:`~repro.kernel.dvfs.DvfsEngine` and all instrumentation in the
pluggable :mod:`~repro.kernel.recorders` observers, so callers that only
need energy totals can run with a minimal recorder set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional

from repro.hw.machine import Machine
from repro.hw.power import CoreState
from repro.kernel.dvfs import DvfsEngine
from repro.kernel.governor import Governor, TickInfo
from repro.kernel.process import (
    Compute,
    Exit,
    Process,
    ProcessBody,
    ProcessState,
    Sleep,
    SleepUntil,
    SpinUntil,
    Yield,
)
from repro.kernel.recorders import (
    EnergyTotals,
    QuantumStats,
    RunRecorder,
    default_recorders,
)
from repro.traces.schema import (
    AppEvent,
    FreqChange,
    PowerTimeline,
    QuantumRecord,
    SchedDecision,
    VoltChange,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import TraceRecorder

_EPS = 1e-6

#: Safety bound on zero-duration process actions at a single instant.
_MAX_ZERO_PROGRESS_ACTIONS = 10_000


@dataclass(frozen=True)
class KernelConfig:
    """Kernel tunables.

    Attributes:
        quantum_us: scheduling quantum / clock-interrupt period (10 ms).
        sched_overhead_us: cost of forcing the scheduler every tick
            (measured ~6 us in the paper); charged as busy time.
        record_sched_log: keep the per-decision scheduler activity log
            (sizeable for long runs; off by default).
    """

    quantum_us: float = 10_000.0
    sched_overhead_us: float = 6.0
    record_sched_log: bool = False

    def __post_init__(self) -> None:
        if self.quantum_us <= 0:
            raise ValueError("quantum must be positive")
        if self.sched_overhead_us < 0:
            raise ValueError("scheduler overhead must be non-negative")
        if self.sched_overhead_us >= self.quantum_us:
            raise ValueError("scheduler overhead must be below the quantum")


@dataclass
class KernelRun:
    """Everything recorded during one simulated run.

    Which fields are populated depends on the recorder set the kernel ran
    with: under the default (full) recorders ``quanta``, ``timeline``,
    ``freq_changes``/``volt_changes`` and (if configured) ``sched_log``
    hold the complete record; under minimal recorders those stay empty and
    the streaming aggregates ``energy`` / ``quantum_stats`` are set
    instead.  Derived views fall back to the aggregates transparently.
    """

    duration_us: float
    quanta: List[QuantumRecord] = field(default_factory=list)
    timeline: PowerTimeline = field(default_factory=PowerTimeline)
    freq_changes: List[FreqChange] = field(default_factory=list)
    volt_changes: List[VoltChange] = field(default_factory=list)
    sched_log: List[SchedDecision] = field(default_factory=list)
    events: List[AppEvent] = field(default_factory=list)
    #: non-idle execution time per pid (pid 0 never appears; spinning and
    #: computing both count, matching the kernel's busy accounting).
    busy_us_by_pid: Dict[int, float] = field(default_factory=dict)
    process_names: Dict[int, str] = field(default_factory=dict)
    clock_changes: int = 0
    clock_stall_us: float = 0.0
    voltage_changes: int = 0
    voltage_settle_us: float = 0.0
    quantum_stats: Optional[QuantumStats] = None
    energy: Optional[EnergyTotals] = None
    #: the live event capture, when a :class:`repro.obs.trace.TraceRecorder`
    #: was attached (None otherwise; set by the recorder's ``contribute``).
    trace: Optional["TraceRecorder"] = None

    # -- derived views -------------------------------------------------------------

    def busy_share_by_name(self) -> Dict[str, float]:
        """Fraction of total busy time consumed per process name.

        The offline analogue of the paper's process-log analysis: which
        application the cycles actually went to.
        """
        if not self.busy_us_by_pid:
            return {}
        total = sum(self.busy_us_by_pid.values())
        if total <= 0:
            return {name: 0.0 for name in self.process_names.values()}
        out: Dict[str, float] = {}
        for pid, busy in self.busy_us_by_pid.items():
            name = self.process_names.get(pid, f"pid{pid}")
            out[name] = out.get(name, 0.0) + busy / total
        return out

    def utilizations(self) -> List[float]:
        """Per-quantum utilization series (Figure 3's raw data)."""
        return [q.utilization for q in self.quanta]

    def mhz_series(self) -> List[float]:
        """Per-quantum clock frequency series (Figure 8's raw data)."""
        return [q.mhz for q in self.quanta]

    def mean_utilization(self) -> float:
        """Average utilization over the run."""
        if self.quanta:
            return sum(q.utilization for q in self.quanta) / len(self.quanta)
        if self.quantum_stats is not None:
            return self.quantum_stats.mean_utilization()
        return 0.0

    def energy_joules(self) -> float:
        """Exact energy of the run (the DAQ estimator lives in measure/)."""
        if len(self.timeline) == 0 and self.energy is not None:
            return self.energy.energy_j
        return self.timeline.energy_joules()

    def mean_power_w(self) -> float:
        """Average power of the run."""
        if len(self.timeline) == 0 and self.energy is not None:
            return self.energy.mean_power_w()
        return self.timeline.mean_power_w()

    def events_of_kind(self, kind: str) -> List[AppEvent]:
        """All application events with the given kind."""
        return [e for e in self.events if e.kind == kind]

    def deadline_misses(self, tolerance_us: float = 0.0) -> List[AppEvent]:
        """Events later than their deadline by more than ``tolerance_us``.

        The paper considers an event on time "if delaying its completion did
        not adversely affect the user", so callers pass a per-workload
        perceptibility tolerance rather than zero.
        """
        if tolerance_us < 0.0:
            # lateness_us is clamped at zero, so a negative tolerance
            # matches every deadlined event.
            return [e for e in self.events if e.deadline_us is not None]
        return [
            e
            for e in self.events
            # e.lateness_us > tolerance_us, without the property call and
            # max(): for non-negative tolerances the clamp cannot matter.
            if e.deadline_us is not None
            and e.time_us - e.deadline_us > tolerance_us
        ]


class Kernel:
    """One simulated boot of the machine's kernel.  Use once: spawn, run."""

    IDLE_PID = 0

    def __init__(
        self,
        machine: Machine,
        governor: Optional[Governor] = None,
        config: Optional[KernelConfig] = None,
        recorders: Optional[Iterable[RunRecorder]] = None,
    ):
        self.machine = machine
        self.governor = governor
        self.config = config if config is not None else KernelConfig()
        self._recorders: List[RunRecorder] = (
            default_recorders(self.config)
            if recorders is None
            else list(recorders)
        )
        self.dvfs = DvfsEngine(machine)
        self._procs: Dict[int, Process] = {}
        self._runq: Deque[Process] = deque()
        self._sleepers: List[Process] = []
        self._next_pid = 1
        self._ran = False

        # run-time state
        self._now = 0.0
        self._busy_us = 0.0  # non-idle time in the current quantum
        self._busy_by_pid: Dict[int, float] = {}
        # clock step/voltage in effect for the current quantum (changes
        # happen only in tick processing, so they are constant within one)
        self._quantum_step = machine.step
        self._quantum_volts = machine.volts

        # Per-hook sink lists: only hooks a recorder actually overrides
        # are dispatched, so unused instrumentation costs nothing.
        base = RunRecorder
        self._power_sinks = [
            r.on_power
            for r in self._recorders
            if type(r).on_power is not base.on_power
        ]
        self._quantum_sinks = [
            r.on_quantum
            for r in self._recorders
            if type(r).on_quantum is not base.on_quantum
        ]
        self._sched_sinks = [
            r.on_sched_decision
            for r in self._recorders
            if type(r).on_sched_decision is not base.on_sched_decision
        ]
        self._freq_sinks = [
            r.on_freq_change
            for r in self._recorders
            if type(r).on_freq_change is not base.on_freq_change
        ]
        self._volt_sinks = [
            r.on_volt_change
            for r in self._recorders
            if type(r).on_volt_change is not base.on_volt_change
        ]

    # -- setup ----------------------------------------------------------------------

    def spawn(self, name: str, body: ProcessBody) -> Process:
        """Create a process; it becomes runnable at time zero.

        Raises:
            RuntimeError: if called after :meth:`run`.
        """
        if self._ran:
            raise RuntimeError("cannot spawn after the kernel has run")
        proc = Process(self._next_pid, name, body)
        self._next_pid += 1
        self._procs[proc.pid] = proc
        self._runq.append(proc)
        return proc

    # -- host interface for the DVFS engine -------------------------------------------

    @property
    def now_us(self) -> float:
        """Current simulation time."""
        return self._now

    def stall(self, duration_us: float) -> None:
        """The processor cannot execute for ``duration_us`` (clock switch);
        the time is charged as busy and drawn at nap power, plus the
        machine's reconfiguration power if it models one."""
        self._record_power(
            CoreState.NAP,
            self._now,
            self._now + duration_us,
            extra_w=self.machine.reconf_extra_w,
        )
        self._busy_us += duration_us
        self._now += duration_us

    def emit_freq_change(self, change: FreqChange) -> None:
        """Fan a frequency-change record out to the recorders."""
        for sink in self._freq_sinks:
            sink(change)

    def emit_volt_change(self, change: VoltChange) -> None:
        """Fan a voltage-change record out to the recorders."""
        for sink in self._volt_sinks:
            sink(change)

    # -- shared run lifecycle (both execution backends) -------------------------------

    def _begin_run(self, duration_us: float) -> tuple:
        """Open the run: single-use guard, validation, governor reset, and
        quantum rounding.  Returns ``(n_quanta, end_us)``.

        Both execution backends enter their loops through here, so the
        run-lifecycle semantics (one run per kernel, positive durations,
        a whole number of quanta, a freshly-reset governor) are defined
        exactly once.
        """
        if self._ran:
            raise RuntimeError("kernel instances are single-use")
        self._ran = True
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        if self.governor is not None:
            self.governor.reset()
        q = self.config.quantum_us
        n_quanta = int(duration_us // q)
        if n_quanta * q < duration_us - _EPS:
            n_quanta += 1
        return n_quanta, n_quanta * q

    def _materialize_run(self, run_cls: type, end_us: float) -> KernelRun:
        """Build the run record's backend-independent skeleton: the event
        stream, per-pid busy accounting, process names, and the DVFS
        engine's transition counters.  Backends fill in their recording
        products (timeline, quanta, logs or streaming aggregates) after.
        """
        counters = self.machine.cpu.counters
        return run_cls(
            duration_us=end_us,
            events=[e for p in self._procs.values() for e in p.context.events],
            busy_us_by_pid=dict(self._busy_by_pid),
            process_names={p.pid: p.name for p in self._procs.values()},
            clock_changes=counters.clock_changes,
            clock_stall_us=counters.clock_stall_us,
            voltage_changes=counters.voltage_changes,
            voltage_settle_us=counters.voltage_settle_us,
        )

    # -- main loop --------------------------------------------------------------------

    def run(self, duration_us: float) -> KernelRun:
        """Simulate ``duration_us`` of wall-clock time and return the record.

        The duration is rounded up to a whole number of quanta so that every
        quantum has a closing clock interrupt.

        Raises:
            RuntimeError: if the kernel has already run.
        """
        _n_quanta, end_us = self._begin_run(duration_us)
        q = self.config.quantum_us

        next_tick = q
        stuck = 0
        last_now = -1.0
        while self._now < end_us - _EPS:
            if self._now <= last_now + _EPS:
                stuck += 1
                if stuck > _MAX_ZERO_PROGRESS_ACTIONS:
                    raise RuntimeError(
                        f"simulation makes no progress at t={self._now:.1f} us"
                    )
            else:
                stuck = 0
                last_now = self._now
            proc = self._pick_next()
            if proc is None:
                # idle: pid 0 naps until the next clock interrupt.
                if self._sched_sinks:
                    self._emit_sched_decision(
                        self._now, self.IDLE_PID, "idle", self.machine.step.mhz
                    )
                self._record_power(CoreState.NAP, self._now, next_tick)
                self._now = next_tick
            else:
                if self._sched_sinks:
                    self._emit_sched_decision(
                        self._now, proc.pid, proc.name, self.machine.step.mhz
                    )
                self._run_process(proc, next_tick)
            if self._now >= next_tick - _EPS:
                self._service_tick(next_tick, final=next_tick >= end_us - _EPS)
                next_tick += q

        run = self._materialize_run(KernelRun, end_us)
        for recorder in self._recorders:
            recorder.contribute(run)
        return run

    # -- scheduling ---------------------------------------------------------------------

    def _pick_next(self) -> Optional[Process]:
        """Pop the next runnable process, or None for the idle process."""
        while self._runq:
            proc = self._runq.popleft()
            if proc.state is ProcessState.RUNNABLE:
                return proc
        return None

    def _emit_sched_decision(
        self, time_us: float, pid: int, name: str, mhz: float
    ) -> None:
        # Scalars, not a SchedDecision: the hot loop emits two of these per
        # quantum, and no recorder needs the object form until run end.
        for sink in self._sched_sinks:
            sink(time_us, pid, name, mhz)

    def _run_process(self, proc: Process, limit_us: float) -> None:
        """Run ``proc`` until it blocks/exits/yields or the quantum ends."""
        zero_progress = 0
        while self._now < limit_us - _EPS:
            if proc.pending_work is not None:
                self._execute_work(proc, limit_us)
                zero_progress = 0
                continue
            if proc.spin_until_us is not None:
                if proc.spin_until_us <= self._now + _EPS:
                    proc.spin_until_us = None
                    continue
                self._execute_spin(proc, limit_us)
                zero_progress = 0
                continue

            action = proc.advance(self._now)
            if action is None or isinstance(action, Exit):
                proc.state = ProcessState.EXITED
                return
            if isinstance(action, Compute):
                if not action.work.is_empty:
                    proc.pending_work = action.work
                else:
                    zero_progress += 1
            elif isinstance(action, SpinUntil):
                proc.spin_until_us = action.until_us
                if action.until_us <= self._now + _EPS:
                    zero_progress += 1
            elif isinstance(action, Sleep):
                if action.duration_us <= _EPS:
                    self._do_yield(proc)
                    return
                self._block(proc, self._now + action.duration_us)
                return
            elif isinstance(action, SleepUntil):
                self._block(proc, max(action.wake_us, self._now))
                return
            elif isinstance(action, Yield):
                self._do_yield(proc)
                return
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown process action {action!r}")

            if zero_progress > _MAX_ZERO_PROGRESS_ACTIONS:
                raise RuntimeError(
                    f"process {proc.name} (pid {proc.pid}) makes no progress "
                    f"at t={self._now:.1f} us"
                )
        # Quantum expired with the process still runnable: preempt it to the
        # back of the run queue (round robin).
        self._runq.append(proc)

    def _do_yield(self, proc: Process) -> None:
        self._runq.append(proc)

    def _block(self, proc: Process, wake_us: float) -> None:
        """Put ``proc`` to sleep; wake-ups happen on timer-tick boundaries."""
        q = self.config.quantum_us
        ticks = int(wake_us // q)
        tick_wake = ticks * q
        if tick_wake < wake_us - _EPS:
            tick_wake += q
        # A wake time that lands exactly on "now" still waits for the next
        # interrupt: the timer has already fired for this jiffy.
        if tick_wake <= self._now + _EPS:
            tick_wake += q
        proc.state = ProcessState.SLEEPING
        proc.wake_us = tick_wake
        self._sleepers.append(proc)

    def _execute_work(self, proc: Process, limit_us: float) -> None:
        """Run the pending Compute until done or the quantum ends."""
        work = proc.pending_work
        assert work is not None
        duration = self.machine.cpu.duration_us(work)
        if duration <= 1e-3:
            # Below one nanosecond: complete instantly.  Such tails arise
            # from floating-point residue when work is split at quantum
            # boundaries and are far below a single clock cycle.
            proc.pending_work = None
            return
        slice_end = min(self._now + duration, limit_us)
        elapsed = slice_end - self._now
        if elapsed <= 0:
            proc.pending_work = None if work.is_empty else work
            return
        self._record_power(CoreState.ACTIVE, self._now, slice_end)
        self._busy_us += elapsed
        self._busy_by_pid[proc.pid] = self._busy_by_pid.get(proc.pid, 0.0) + elapsed
        _, remaining = self.machine.cpu.split_work(work, elapsed)
        proc.pending_work = None if remaining.is_empty else remaining
        self._now = slice_end

    def _execute_spin(self, proc: Process, limit_us: float) -> None:
        """Busy-wait until the spin target or the quantum ends."""
        assert proc.spin_until_us is not None
        target = min(proc.spin_until_us, limit_us)
        if target > self._now:
            self._record_power(CoreState.ACTIVE, self._now, target)
            self._busy_us += target - self._now
            self._busy_by_pid[proc.pid] = (
                self._busy_by_pid.get(proc.pid, 0.0) + target - self._now
            )
            self._now = target
        if proc.spin_until_us <= self._now + _EPS:
            proc.spin_until_us = None

    # -- tick processing --------------------------------------------------------------

    def _service_tick(self, tick_us: float, final: bool = False) -> None:
        """Clock-interrupt bookkeeping at a quantum boundary.

        The terminal tick (``final``) only closes the last quantum: no
        scheduler overhead is charged and no governor action is applied,
        since nothing runs afterwards.
        """
        self._now = tick_us

        # 1. close the quantum that just ended.
        record = QuantumRecord(
            end_us=tick_us,
            busy_us=min(self._busy_us, self.config.quantum_us),
            quantum_us=self.config.quantum_us,
            step_index=self._quantum_step.index,
            mhz=self._quantum_step.mhz,
            volts=self._quantum_volts,
        )
        for sink in self._quantum_sinks:
            sink(record)
        self._busy_us = 0.0
        if final:
            return

        # 2. wake expired sleepers (deterministic order: wake time, pid).
        due = [p for p in self._sleepers if p.wake_us is not None and p.wake_us <= tick_us + _EPS]
        if due:
            due.sort(key=lambda p: (p.wake_us, p.pid))
            for p in due:
                p.state = ProcessState.RUNNABLE
                p.wake_us = None
                self._runq.append(p)
            self._sleepers = [p for p in self._sleepers if p.state is ProcessState.SLEEPING]

        # 3. charge the cost of forcing the scheduler every tick.
        overhead = self.config.sched_overhead_us
        if overhead > 0:
            self._record_power(CoreState.ACTIVE, self._now, self._now + overhead)
            self._busy_us += overhead
            self._now += overhead

        # 4. invoke the clock-scaling module.
        if self.governor is not None:
            info = TickInfo(
                now_us=tick_us,
                utilization=record.utilization,
                busy_us=record.busy_us,
                quantum_us=record.quantum_us,
                step_index=record.step_index,
                mhz=record.mhz,
                volts=record.volts,
                max_step_index=self.machine.clock_table.max_index,
            )
            request = self.governor.on_tick(info)
            if request is not None and not request.is_noop:
                self.dvfs.apply(request, self)

        self._quantum_step = self.machine.step
        self._quantum_volts = self.machine.volts

    # -- power recording -----------------------------------------------------------------

    def _record_power(
        self,
        state: CoreState,
        start_us: float,
        end_us: float,
        extra_w: float = 0.0,
    ) -> None:
        """Fan machine power over [start, end] to the recorders, honouring
        the DVFS engine's rail-sag window.  ``extra_w`` adds a flat power
        term on top of the model (reconfiguration cost during stalls)."""
        if end_us <= start_us + _EPS:
            return
        if not self._power_sinks:
            return
        machine = self.machine
        if start_us < self.dvfs.sag_until_us - _EPS:
            split = min(end_us, self.dvfs.sag_until_us)
            watts = machine.power.total_w(
                machine.step, self.dvfs.sag_volts, state
            )
            if extra_w:
                watts = watts + extra_w
            for sink in self._power_sinks:
                sink(start_us, split, watts)
            if end_us <= split + _EPS:
                return
            start_us = split
        watts = machine.power_w(state)
        if extra_w:
            watts = watts + extra_w
        for sink in self._power_sinks:
            sink(start_us, end_us, watts)
