"""Process model: generator coroutines yielding kernel actions.

A workload process is a Python generator.  Each ``yield`` hands the kernel
an *action*; the generator is resumed when the action completes, at which
point the simulated clock (visible through :class:`ProcessContext`) has
advanced.  This mirrors how the paper's applications interact with the
kernel: they compute, block in ``select``/``usleep``, or busy-wait on the
3.6 MHz processor timer (the MPEG player's 12 ms spin loop).

Actions:

- :class:`Compute` -- execute a :class:`~repro.hw.work.Work` amount of
  computation; duration depends on the clock step and the memory model.
- :class:`Sleep` / :class:`SleepUntil` -- block; wake-ups happen on the
  10 ms timer tick, as in Linux 2.0 (``jiffies`` granularity).
- :class:`SpinUntil` -- stay runnable and burn cycles until a precise time
  (polling ``gettimeofday``, which has microsecond resolution).
- :class:`Yield` -- go to the back of the run queue.
- :class:`Exit` -- terminate (returning from the generator does the same).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Iterator, Optional, Union

from repro.hw.work import Work
from repro.traces.schema import AppEvent


@dataclass(frozen=True)
class Compute:
    """Execute ``work``; resumes when all of it has run."""

    work: Work


@dataclass(frozen=True)
class Sleep:
    """Block for ``duration_us`` (rounded up to the next timer tick)."""

    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("sleep duration must be non-negative")


@dataclass(frozen=True)
class SleepUntil:
    """Block until ``wake_us`` (rounded up to the next timer tick)."""

    wake_us: float


@dataclass(frozen=True)
class SpinUntil:
    """Busy-wait (remaining runnable) until the precise time ``until_us``."""

    until_us: float


@dataclass(frozen=True)
class Yield:
    """Relinquish the CPU; rejoin the back of the run queue."""


@dataclass(frozen=True)
class Exit:
    """Terminate the process."""


Action = Union[Compute, Sleep, SleepUntil, SpinUntil, Yield, Exit]

#: A process body: a generator of actions, given its context at spawn.
ProcessBody = Callable[["ProcessContext"], Generator[Action, None, None]]


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    EXITED = "exited"


class ProcessContext:
    """The view a process body has of the kernel.

    Attributes are maintained by the kernel as simulation advances; bodies
    read :attr:`now_us` to make timing decisions (the MPEG player's
    spin-vs-sleep choice, deadline bookkeeping) and call :meth:`emit` to
    record application events for the deadline analysis.
    """

    def __init__(self, pid: int, name: str):
        self.pid = pid
        self.name = name
        self.now_us: float = 0.0
        self._events: list[AppEvent] = []

    def emit(
        self,
        kind: str,
        deadline_us: Optional[float] = None,
        payload: Optional[float] = None,
    ) -> AppEvent:
        """Record an application event at the current simulated time."""
        # AppEvent is a frozen dataclass; its generated __init__ funnels
        # every field through object.__setattr__.  Writing the instance
        # dict directly is several times cheaper, and emit() runs for
        # every frame/chunk/response of a workload (~1500 times per 60 s
        # run).  AppEvent has no __post_init__ or __slots__, so the
        # resulting object is indistinguishable from a normal one.
        event = AppEvent.__new__(AppEvent)
        event.__dict__.update(
            time_us=self.now_us,
            pid=self.pid,
            kind=kind,
            deadline_us=deadline_us,
            payload=payload,
        )
        self._events.append(event)
        return event

    @property
    def events(self) -> "list[AppEvent]":
        """All events emitted so far (kernel collects these per run)."""
        return self._events


class Process:
    """Kernel-side bookkeeping for one process.

    Attributes:
        pid: process identifier (pid 0 is reserved for the idle process).
        name: human-readable name for logs.
        state: lifecycle state.
        pending_work: remainder of an in-progress :class:`Compute`.
        spin_until_us: target of an in-progress :class:`SpinUntil`.
        wake_us: absolute wake time while sleeping.
    """

    def __init__(self, pid: int, name: str, body: ProcessBody):
        if pid <= 0:
            raise ValueError("user process pids must be positive (0 is idle)")
        self.pid = pid
        self.name = name
        self.context = ProcessContext(pid, name)
        self._gen: Iterator[Action] = body(self.context)
        self.state = ProcessState.RUNNABLE
        self.pending_work: Optional[Work] = None
        self.spin_until_us: Optional[float] = None
        self.wake_us: Optional[float] = None
        self._started = False

    def advance(self, now_us: float) -> Optional[Action]:
        """Resume the generator and return its next action.

        Returns None when the generator finishes (process exits).
        """
        self.context.now_us = now_us
        try:
            return next(self._gen)
        except StopIteration:
            return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Process(pid={self.pid}, name={self.name!r}, state={self.state.value})"
