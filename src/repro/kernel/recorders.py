"""Pluggable run instrumentation for the kernel simulator.

The kernel fans its observations out to a set of :class:`RunRecorder`
observers instead of recording everything unconditionally.  Each recorder
subscribes to the hooks it overrides (the kernel skips non-overridden
hooks entirely, so unused instrumentation costs nothing in the hot loop)
and deposits its product into the :class:`~repro.kernel.scheduler.KernelRun`
at the end via :meth:`RunRecorder.contribute`.

Two stock recorder sets cover the common cases:

- :func:`default_recorders` — full instrumentation, equivalent to the
  original always-on recording: the power timeline, the per-quantum log,
  the frequency/voltage change history, and (when configured) the
  scheduler activity log.
- :func:`minimal_recorders` — just enough for an energy-only sweep cell:
  a streaming energy meter and streaming quantum statistics.  The meter
  replicates the timeline's segment-merge arithmetic operation for
  operation, so the energy it reports is **bitwise equal** to
  ``timeline.energy_joules()`` under full recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.traces.schema import (
    FreqChange,
    PowerTimeline,
    QuantumRecord,
    SchedDecision,
    VoltChange,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.scheduler import KernelConfig, KernelRun

#: Recording-mode names understood by the measurement layer.
RECORDING_FULL = "full"
RECORDING_MINIMAL = "minimal"


class RunRecorder:
    """Base observer: every hook is a no-op.

    Subclasses override only the hooks they need; the kernel detects
    overridden hooks by comparing against these base attributes and does
    not call (or even build arguments for) the rest.  Detection is by
    *class* attribute, but dispatch fetches the hook from the *instance*,
    so a recorder may rebind a hook to a bound method (e.g.
    ``self.on_quantum = self.quanta.append``) in ``__init__`` to shave the
    Python-level call frame off the hot loop.

    **Backend-agnostic stream contract.**  Recorders attach to any
    execution backend (:mod:`repro.kernel.backend`).  The reference
    kernel dispatches hooks live; the fast-path core replays each event
    stream to the taps at run end.  Both deliver every stream (power
    segments, quanta, scheduler decisions, frequency/voltage changes)
    in event order *within* the stream, but recorders must not depend
    on interleaving *across* streams, nor on receiving power segments
    pre- or post-merge (the merge arithmetic is idempotent, so any
    consumer applying the timeline's merge tolerances sees identical
    results either way).  Buffer per stream and reduce in
    :meth:`contribute` — as every recorder in this module and the obs
    layer does — and results are bitwise identical on every backend.
    """

    def on_power(self, start_us: float, end_us: float, watts: float) -> None:
        """A power segment: the machine drew ``watts`` over the interval."""

    def on_quantum(self, record: QuantumRecord) -> None:
        """A scheduling quantum closed."""

    def on_sched_decision(
        self, time_us: float, pid: int, name: str, mhz: float
    ) -> None:
        """The scheduler picked a process (or went idle).

        Passed as scalars — not a :class:`SchedDecision` — so the kernel
        never constructs a record object per decision when no recorder
        wants one materialized; log-keeping recorders buffer the tuples
        and build :class:`SchedDecision` objects only at run end.
        """

    def on_freq_change(self, change: FreqChange) -> None:
        """A clock-frequency change was applied."""

    def on_volt_change(self, change: VoltChange) -> None:
        """A core-voltage change was applied."""

    def replay_quantum_rows(self, rows: List[tuple], quantum_us: float) -> None:
        """Optional bulk form of :meth:`on_quantum` for replaying backends.

        A backend that buffers quanta as plain rows (the fast-path core's
        ``(end_us, busy_us, utilization, step_index, mhz, volts)`` tuples)
        calls this *instead of* per-record :meth:`on_quantum` dispatch
        when a recorder overrides it, handing over the whole stream at
        once without materializing a
        :class:`~repro.traces.schema.QuantumRecord` per quantum.  The
        rows are shared, not copied: treat them as read-only.  An
        override must reduce them with arithmetic bitwise-equal to its
        :meth:`on_quantum` path — the equivalence suite holds recorders
        to identical output on every backend either way.
        """

    def replay_sched_rows(self, rows: List[tuple]) -> None:
        """Optional bulk form of :meth:`on_sched_decision`.

        Same contract as :meth:`replay_quantum_rows`, for the scheduler
        stream's ``(time_us, pid, name, mhz)`` tuples.
        """

    def contribute(self, run: "KernelRun") -> None:
        """Deposit this recorder's product into the finished run."""


class PowerTimelineRecorder(RunRecorder):
    """Records the full continuous power signal (the DAQ's input)."""

    def __init__(self) -> None:
        self.timeline = PowerTimeline()
        # Dispatch straight into the timeline's own record method.
        self.on_power = self.timeline.record

    def on_power(self, start_us: float, end_us: float, watts: float) -> None:
        self.timeline.record(start_us, end_us, watts)

    def contribute(self, run: "KernelRun") -> None:
        run.timeline = self.timeline


@dataclass(frozen=True)
class EnergyTotals:
    """Streaming-integrated energy of a run (minimal-recording mode)."""

    energy_j: float
    start_us: float
    end_us: float

    def mean_power_w(self) -> float:
        """Average power over the recorded window, in watts."""
        duration_s = (self.end_us - self.start_us) * 1e-6
        if duration_s <= 0:
            return 0.0
        return self.energy_j / duration_s


class EnergyMeterRecorder(RunRecorder):
    """Integrates energy on the fly without storing the timeline.

    Replicates :meth:`~repro.traces.schema.PowerTimeline.record` exactly —
    the same zero-length skip, the same adjacent-equal-power merge with
    the same tolerances, and the same per-segment ``w * dt`` summation
    order — so the total is bitwise equal to the full timeline's
    ``energy_joules()``.
    """

    def __init__(self) -> None:
        self._pending = False
        self._pend_start = 0.0
        self._pend_end = 0.0
        self._pend_w = 0.0
        self._energy_j = 0.0
        self._start_us = 0.0

    def on_power(self, start_us: float, end_us: float, watts: float) -> None:
        if end_us <= start_us + 1e-9:
            return
        if watts < 0:
            raise ValueError("power cannot be negative")
        if self._pending:
            if (
                abs(self._pend_end - start_us) < 1e-6
                and abs(self._pend_w - watts) < 1e-12
            ):
                self._pend_end = end_us
                return
            self._energy_j += (
                self._pend_w * (self._pend_end - self._pend_start) * 1e-6
            )
        else:
            self._start_us = start_us
            self._pending = True
        self._pend_start = start_us
        self._pend_end = end_us
        self._pend_w = watts

    def totals(self) -> EnergyTotals:
        """The integrated energy including any still-pending segment."""
        energy = self._energy_j
        end = self._pend_end if self._pending else self._start_us
        if self._pending:
            energy += self._pend_w * (self._pend_end - self._pend_start) * 1e-6
        return EnergyTotals(
            energy_j=energy, start_us=self._start_us, end_us=end
        )

    def contribute(self, run: "KernelRun") -> None:
        run.energy = self.totals()


class QuantumLogRecorder(RunRecorder):
    """Keeps every per-quantum utilization record (Figures 3/4/8)."""

    def __init__(self) -> None:
        self.quanta: List[QuantumRecord] = []
        self.on_quantum = self.quanta.append

    def on_quantum(self, record: QuantumRecord) -> None:
        self.quanta.append(record)

    def contribute(self, run: "KernelRun") -> None:
        run.quanta = self.quanta


@dataclass(frozen=True)
class QuantumStats:
    """Streaming per-quantum aggregates (minimal-recording mode)."""

    count: int
    utilization_sum: float
    quanta_by_step: Dict[int, int] = field(default_factory=dict)
    mhz_by_step: Dict[int, float] = field(default_factory=dict)
    final_step_index: int = 0
    final_mhz: float = 0.0
    final_volts: float = 0.0

    def mean_utilization(self) -> float:
        """Average utilization, bitwise equal to the full-log mean."""
        if not self.count:
            return 0.0
        return self.utilization_sum / self.count


class QuantumStatsRecorder(RunRecorder):
    """Accumulates quantum aggregates without keeping the log.

    The utilization sum adds ``record.utilization`` in arrival order —
    the same left-to-right float summation as
    :meth:`KernelRun.mean_utilization` over the full log — so the mean is
    bitwise equal between recording modes.
    """

    def __init__(self) -> None:
        self._count = 0
        self._utilization_sum = 0.0
        self._by_step: Dict[int, int] = {}
        self._mhz_by_step: Dict[int, float] = {}
        self._last: Optional[QuantumRecord] = None

    def on_quantum(self, record: QuantumRecord) -> None:
        self._count += 1
        self._utilization_sum += record.utilization
        self._by_step[record.step_index] = (
            self._by_step.get(record.step_index, 0) + 1
        )
        self._mhz_by_step[record.step_index] = record.mhz
        self._last = record

    def stats(self) -> QuantumStats:
        """The aggregates accumulated so far."""
        last = self._last
        return QuantumStats(
            count=self._count,
            utilization_sum=self._utilization_sum,
            quanta_by_step=dict(self._by_step),
            mhz_by_step=dict(self._mhz_by_step),
            final_step_index=last.step_index if last else 0,
            final_mhz=last.mhz if last else 0.0,
            final_volts=last.volts if last else 0.0,
        )

    def contribute(self, run: "KernelRun") -> None:
        run.quantum_stats = self.stats()


class TransitionLogRecorder(RunRecorder):
    """Keeps the clock-frequency and core-voltage change history."""

    def __init__(self) -> None:
        self.freq_changes: List[FreqChange] = []
        self.volt_changes: List[VoltChange] = []
        self.on_freq_change = self.freq_changes.append
        self.on_volt_change = self.volt_changes.append

    def on_freq_change(self, change: FreqChange) -> None:
        self.freq_changes.append(change)

    def on_volt_change(self, change: VoltChange) -> None:
        self.volt_changes.append(change)

    def contribute(self, run: "KernelRun") -> None:
        run.freq_changes = self.freq_changes
        run.volt_changes = self.volt_changes


class SchedLogRecorder(RunRecorder):
    """Keeps the microsecond scheduler activity log (paper §4.3).

    Decisions arrive as scalar rows (twice per quantum in the hot loop);
    they are buffered as tuples and materialized into
    :class:`~repro.traces.schema.SchedDecision` objects once, at run end.
    """

    def __init__(self) -> None:
        self._rows: List[tuple] = []

    def on_sched_decision(
        self, time_us: float, pid: int, name: str, mhz: float
    ) -> None:
        self._rows.append((time_us, pid, name, mhz))

    @property
    def decisions(self) -> List[SchedDecision]:
        """The buffered log as :class:`SchedDecision` objects."""
        return [SchedDecision(*row) for row in self._rows]

    def contribute(self, run: "KernelRun") -> None:
        run.sched_log = self.decisions


def default_recorders(config: "KernelConfig") -> List[RunRecorder]:
    """The full instrumentation set (the original always-on recording)."""
    recorders: List[RunRecorder] = [
        PowerTimelineRecorder(),
        QuantumLogRecorder(),
        TransitionLogRecorder(),
    ]
    if config.record_sched_log:
        recorders.append(SchedLogRecorder())
    return recorders


def minimal_recorders(config: "KernelConfig") -> List[RunRecorder]:
    """Just enough instrumentation for an energy-only sweep cell."""
    recorders: List[RunRecorder] = [
        EnergyMeterRecorder(),
        QuantumStatsRecorder(),
    ]
    if config.record_sched_log:
        recorders.append(SchedLogRecorder())
    return recorders


def recorders_for(mode: str, config: "KernelConfig") -> List[RunRecorder]:
    """Build a recorder set by mode name (``"full"`` / ``"minimal"``).

    Raises:
        ValueError: for unknown mode names.
    """
    if mode == RECORDING_FULL:
        return default_recorders(config)
    if mode == RECORDING_MINIMAL:
        return minimal_recorders(config)
    raise ValueError(
        f"unknown recording mode {mode!r}; "
        f"expected {RECORDING_FULL!r} or {RECORDING_MINIMAL!r}"
    )
