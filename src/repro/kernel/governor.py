"""The clock-scaling module interface (paper §4.3).

The paper modifies the Linux clock interrupt handler to call an installed
clock-scaling module on every 10 ms tick, handing it the CPU utilization of
the quantum that just ended.  The module may then request a new clock step
and/or core voltage; the kernel applies the request, charging the measured
transition costs.

:class:`Governor` is that module interface.  Policy implementations live in
:mod:`repro.core.policy`; this module only defines the kernel-facing
contract plus trivial governors used as controls (constant speed).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TickInfo:
    """What the clock interrupt handler passes to the scaling module.

    Attributes:
        now_us: time of the clock interrupt.
        utilization: busy fraction of the quantum that just ended, in [0,1].
        busy_us: raw non-idle time of that quantum.
        quantum_us: nominal quantum length (10,000 us).
        step_index: index of the clock step in effect during the quantum.
        mhz: frequency of that step.
        volts: core voltage in effect during the quantum.
        max_step_index: index of the fastest available step.
    """

    now_us: float
    utilization: float
    busy_us: float
    quantum_us: float
    step_index: int
    mhz: float
    volts: float
    max_step_index: int


@dataclass(frozen=True)
class GovernorRequest:
    """A requested machine reconfiguration.

    ``None`` fields mean "leave unchanged".  The kernel clamps step indices
    into range and sequences voltage/frequency changes safely (voltage is
    raised before a frequency increase and lowered after a decrease).
    """

    step_index: Optional[int] = None
    volts: Optional[float] = None

    @property
    def is_noop(self) -> bool:
        """True when the request changes nothing."""
        return self.step_index is None and self.volts is None


class Governor(abc.ABC):
    """A clock-scaling policy module installed into the kernel."""

    #: Declares that once :meth:`on_tick` has returned ``None``, every
    #: subsequent call will return ``None`` as well (the governor is done
    #: reconfiguring and is insensitive to further observations).  The
    #: fast-path kernel then stops building tick observations for it;
    #: the reference kernel keeps calling either way, so results are
    #: identical.  Adaptive policies must leave this False.
    inert_after_none = False

    @abc.abstractmethod
    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        """Called from the clock interrupt handler once per quantum.

        Args:
            info: observation of the quantum that just ended.

        Returns:
            A reconfiguration request, or None/no-op to leave the machine
            alone.
        """

    def reset(self) -> None:
        """Clear internal predictor state (called at run start)."""


class ConstantGovernor(Governor):
    """Pins the machine at a fixed step (and optionally voltage).

    This is the paper's constant-speed control configuration (the first
    three rows of Table 2).  The request is issued on the first tick only;
    after that the governor is inert (see :attr:`Governor.inert_after_none`).
    """

    inert_after_none = True

    def __init__(self, step_index: int, volts: Optional[float] = None):
        self.step_index = step_index
        self.volts = volts
        self._applied = False

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        if self._applied:
            return None
        self._applied = True
        return GovernorRequest(step_index=self.step_index, volts=self.volts)

    def reset(self) -> None:
        self._applied = False
