"""Voltage/frequency sequencing: the DVFS side of the simulated kernel.

:class:`DvfsEngine` applies governor requests to the machine the way the
paper's modified kernel (and any real cpufreq driver) must: clamp the
requested step into the table, raise the core rail *before* a frequency
increase and drop it *after* a decrease, charge the ~200 us clock-change
stall, and track the rail-sag window after a voltage drop (during which
the rail — and hence power — is still at the old voltage).

The engine is machine-generic: when a request names a frequency without a
voltage, it asks :meth:`~repro.hw.machine.Machine.auto_volts_for` what the
machine's voltage-management convention wants.  On the Itsy that raises
the rail only when the requested frequency is unsafe at the present
voltage; on the SA-2 it tracks the per-step voltage schedule in both
directions.

Time accounting stays in the scheduler core: the engine calls back into a
small host interface (``now_us``, ``stall``, ``emit_freq_change``,
``emit_volt_change``) implemented by the kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.machine import Machine
from repro.kernel.governor import GovernorRequest
from repro.traces.schema import FreqChange, VoltChange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.cpu import TransitionCounters
    from repro.kernel.scheduler import Kernel


class DvfsEngine:
    """Sequences clock and voltage transitions for one machine.

    Attributes:
        machine: the machine being driven.
        sag_until_us: end of the current voltage-sag window (power must be
            computed at :attr:`sag_volts` before this time).
        sag_volts: the pre-drop voltage in effect during the sag window.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.sag_until_us = -1.0
        self.sag_volts = 0.0
        # auto_volts_for is pure in (requested step, present rail
        # voltage) on every machine (Itsy checks rail safety, SA-2 reads
        # its per-step schedule); a busy interval policy asks the same
        # handful of questions ~1000 times per run.
        self._auto_volts: dict = {}

    @property
    def counters(self) -> "TransitionCounters":
        """Counts and cumulative costs of the transitions applied so far."""
        return self.machine.cpu.counters

    def apply(self, request: GovernorRequest, host: "Kernel") -> None:
        """Apply a governor request with safe voltage/frequency sequencing.

        Like a real cpufreq driver, the kernel adjusts the core rail on
        its own (per the machine's convention) when a requested frequency
        comes without a voltage.  An *explicit* voltage request that is
        unsafe with the requested frequency is a governor bug and raises
        ``VoltageError``.
        """
        machine = self.machine
        target_volts = request.volts
        if request.step_index is not None and target_volts is None:
            key = (request.step_index, machine.volts)
            cache = self._auto_volts
            if key in cache:
                target_volts = cache[key]
            else:
                table = machine.clock_table
                clamped = table[table.clamp_index(request.step_index)]
                target_volts = machine.auto_volts_for(clamped)
                cache[key] = target_volts
        raise_volts_first = (
            target_volts is not None and target_volts > machine.volts
        )
        if raise_volts_first:
            self._apply_voltage(target_volts, host)

        if request.step_index is not None:
            old = machine.step
            stall = machine.set_step_index(request.step_index)
            if machine.step.index != old.index:
                if stall > 0:
                    # The processor cannot execute during the switch; the
                    # clock generator output is treated as the new step's
                    # nap power.
                    host.stall(stall)
                # FreqChange is frozen; building it through the instance
                # dict skips four object.__setattr__ calls, and a busy
                # interval policy applies ~1000 changes per minute run.
                change = FreqChange.__new__(FreqChange)
                change.__dict__.update(
                    time_us=host.now_us,
                    from_mhz=old.mhz,
                    to_mhz=machine.step.mhz,
                    stall_us=stall,
                )
                host.emit_freq_change(change)

        if target_volts is not None and not raise_volts_first:
            self._apply_voltage(target_volts, host)

    def _apply_voltage(self, volts: float, host: "Kernel") -> None:
        old = self.machine.volts
        if volts == old:
            return
        settle = self.machine.set_voltage(volts)
        if volts < old and settle > 0:
            # The rail sags slowly: power stays at the old voltage until
            # the rail settles.  Execution continues meanwhile.
            self.sag_until_us = host.now_us + settle
            self.sag_volts = old
        change = VoltChange.__new__(VoltChange)
        change.__dict__.update(
            time_us=host.now_us, from_volts=old, to_volts=volts, settle_us=settle
        )
        host.emit_volt_change(change)
