"""Voltage/frequency sequencing: the DVFS side of the simulated kernel.

:class:`DvfsEngine` applies governor requests to the machine the way the
paper's modified kernel (and any real cpufreq driver) must: clamp the
requested step into the table, raise the core rail *before* a frequency
increase and drop it *after* a decrease, charge the ~200 us clock-change
stall, and track the rail-sag window after a voltage drop (during which
the rail — and hence power — is still at the old voltage).

The engine is machine-generic: when a request names a frequency without a
voltage, it asks :meth:`~repro.hw.machine.Machine.auto_volts_for` what the
machine's voltage-management convention wants.  On the Itsy that raises
the rail only when the requested frequency is unsafe at the present
voltage; on the SA-2 it tracks the per-step voltage schedule in both
directions.

Time accounting stays in the scheduler core: the engine calls back into a
small host interface (``now_us``, ``stall``, ``emit_freq_change``,
``emit_volt_change``) implemented by the kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.machine import Machine
from repro.kernel.governor import GovernorRequest
from repro.traces.schema import FreqChange, VoltChange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.cpu import TransitionCounters
    from repro.kernel.scheduler import Kernel


class DvfsEngine:
    """Sequences clock and voltage transitions for one machine.

    Attributes:
        machine: the machine being driven.
        sag_until_us: end of the current voltage-sag window (power must be
            computed at :attr:`sag_volts` before this time).
        sag_volts: the pre-drop voltage in effect during the sag window.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.sag_until_us = -1.0
        self.sag_volts = 0.0

    @property
    def counters(self) -> "TransitionCounters":
        """Counts and cumulative costs of the transitions applied so far."""
        return self.machine.cpu.counters

    def apply(self, request: GovernorRequest, host: "Kernel") -> None:
        """Apply a governor request with safe voltage/frequency sequencing.

        Like a real cpufreq driver, the kernel adjusts the core rail on
        its own (per the machine's convention) when a requested frequency
        comes without a voltage.  An *explicit* voltage request that is
        unsafe with the requested frequency is a governor bug and raises
        ``VoltageError``.
        """
        machine = self.machine
        target_volts = request.volts
        if request.step_index is not None and target_volts is None:
            table = machine.clock_table
            clamped = table[table.clamp_index(request.step_index)]
            target_volts = machine.auto_volts_for(clamped)
        raise_volts_first = (
            target_volts is not None and target_volts > machine.volts
        )
        if raise_volts_first:
            self._apply_voltage(target_volts, host)

        if request.step_index is not None:
            old = machine.step
            stall = machine.set_step_index(request.step_index)
            if machine.step.index != old.index:
                if stall > 0:
                    # The processor cannot execute during the switch; the
                    # clock generator output is treated as the new step's
                    # nap power.
                    host.stall(stall)
                host.emit_freq_change(
                    FreqChange(host.now_us, old.mhz, machine.step.mhz, stall)
                )

        if target_volts is not None and not raise_volts_first:
            self._apply_voltage(target_volts, host)

    def _apply_voltage(self, volts: float, host: "Kernel") -> None:
        old = self.machine.volts
        if volts == old:
            return
        settle = self.machine.set_voltage(volts)
        if volts < old and settle > 0:
            # The rail sags slowly: power stays at the old voltage until
            # the rail settles.  Execution continues meanwhile.
            self.sag_until_us = host.now_us + settle
            self.sag_volts = old
        host.emit_volt_change(VoltChange(host.now_us, old, volts, settle))
