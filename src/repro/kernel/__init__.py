"""Discrete-event simulator of the Itsy's Linux 2.0.30 kernel.

The paper's measurements rely on two kernel modifications (§4.3):

1. a *scheduler activity log* recording every scheduling decision with
   microsecond resolution, and
2. an *extensible clock-scaling policy module* called from the clock
   interrupt handler, fed by per-quantum CPU-utilization accounting (the
   idle process is pid 0; non-idle execution time is summed and cleared on
   every clock interrupt).

This package reproduces that environment in simulation:

- :mod:`repro.kernel.process` -- processes as generator coroutines yielding
  actions (compute, sleep, spin, yield, exit);
- :mod:`repro.kernel.scheduler` -- the scheduling core: 100 Hz tick, 10 ms
  quanta with the scheduler forced every tick (the paper sets the process
  counter to 1), round-robin run queue, nap-mode idle, utilization
  accounting, governor invocation;
- :mod:`repro.kernel.dvfs` -- voltage/frequency sequencing (request
  clamping, raise-before/drop-after ordering, stall and sag accounting);
- :mod:`repro.kernel.recorders` -- pluggable run instrumentation (power
  timeline, quantum log, transition history, sched log, or streaming
  energy/utilization aggregates for energy-only cells);
- :mod:`repro.kernel.governor` -- the clock-scaling module interface.
"""

from repro.kernel.dvfs import DvfsEngine
from repro.kernel.governor import (
    ConstantGovernor,
    Governor,
    GovernorRequest,
    TickInfo,
)
from repro.kernel.process import (
    Compute,
    Exit,
    Process,
    ProcessContext,
    ProcessState,
    Sleep,
    SleepUntil,
    SpinUntil,
    Yield,
)
from repro.kernel.recorders import (
    RECORDING_FULL,
    RECORDING_MINIMAL,
    EnergyMeterRecorder,
    EnergyTotals,
    PowerTimelineRecorder,
    QuantumLogRecorder,
    QuantumStats,
    QuantumStatsRecorder,
    RunRecorder,
    SchedLogRecorder,
    TransitionLogRecorder,
    default_recorders,
    minimal_recorders,
    recorders_for,
)
from repro.kernel.scheduler import Kernel, KernelConfig, KernelRun

__all__ = [
    "RECORDING_FULL",
    "RECORDING_MINIMAL",
    "Compute",
    "ConstantGovernor",
    "DvfsEngine",
    "EnergyMeterRecorder",
    "EnergyTotals",
    "Exit",
    "Governor",
    "GovernorRequest",
    "Kernel",
    "KernelConfig",
    "KernelRun",
    "PowerTimelineRecorder",
    "Process",
    "ProcessContext",
    "ProcessState",
    "QuantumLogRecorder",
    "QuantumStats",
    "QuantumStatsRecorder",
    "RunRecorder",
    "SchedLogRecorder",
    "Sleep",
    "SleepUntil",
    "SpinUntil",
    "TickInfo",
    "TransitionLogRecorder",
    "Yield",
    "default_recorders",
    "minimal_recorders",
    "recorders_for",
]
