"""Discrete-event simulator of the Itsy's Linux 2.0.30 kernel.

The paper's measurements rely on two kernel modifications (§4.3):

1. a *scheduler activity log* recording every scheduling decision with
   microsecond resolution, and
2. an *extensible clock-scaling policy module* called from the clock
   interrupt handler, fed by per-quantum CPU-utilization accounting (the
   idle process is pid 0; non-idle execution time is summed and cleared on
   every clock interrupt).

This package reproduces that environment in simulation:

- :mod:`repro.kernel.process` -- processes as generator coroutines yielding
  actions (compute, sleep, spin, yield, exit);
- :mod:`repro.kernel.scheduler` -- the kernel proper: 100 Hz tick, 10 ms
  quanta with the scheduler forced every tick (the paper sets the process
  counter to 1), round-robin run queue, nap-mode idle, utilization
  accounting, power recording, governor invocation;
- :mod:`repro.kernel.governor` -- the clock-scaling module interface.
"""

from repro.kernel.governor import (
    ConstantGovernor,
    Governor,
    GovernorRequest,
    TickInfo,
)
from repro.kernel.process import (
    Compute,
    Exit,
    Process,
    ProcessContext,
    ProcessState,
    Sleep,
    SleepUntil,
    SpinUntil,
    Yield,
)
from repro.kernel.scheduler import Kernel, KernelConfig, KernelRun

__all__ = [
    "Compute",
    "ConstantGovernor",
    "Exit",
    "Governor",
    "GovernorRequest",
    "Kernel",
    "KernelConfig",
    "KernelRun",
    "Process",
    "ProcessContext",
    "ProcessState",
    "Sleep",
    "SleepUntil",
    "SpinUntil",
    "TickInfo",
    "Yield",
]
