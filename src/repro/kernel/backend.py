"""Pluggable execution backends: one simulation contract, many engines.

The simulation core exists in two implementations with a bitwise-equality
contract between them: the reference :class:`~repro.kernel.scheduler.Kernel`
(the oracle — pluggable recorders, straightforward dispatch) and the
fast-path :class:`~repro.kernel.fastpath.FastKernel` (the same loop
flattened, ~3× faster).  This module is the seam that selects between
them — and between any future engine, such as a numpy-vectorized
multi-lane batch core — without the measurement layer knowing which one
it drives:

- :class:`ExecutionBackend` is the protocol: a named factory that builds
  a ready-to-run kernel for a (machine, governor, config, recording,
  extra_recorders) request.  Observers attach through the same
  backend-agnostic recorder/tap layer on every backend, so observation
  never forces a different execution path than the measured one.
- :data:`BACKENDS` / :func:`register_backend` is the registry.  The
  ``"reference"`` and ``"fastpath"`` backends are built in; a ``"batch"``
  backend registers here when it lands.
- :func:`resolve_backend` turns a caller's choice (a name, a backend
  instance, or None for the default) into a backend.  The default is
  ``"fastpath"``; the :data:`REPRO_FORCE_BACKEND` environment variable
  overrides the *default* resolution (every run that does not explicitly
  pick a backend), which is how CI keeps the reference oracle exercised
  across the whole suite without trivializing the equivalence tests that
  explicitly compare the two backends.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Union

from repro.hw.machine import Machine
from repro.kernel.fastpath import FastKernel
from repro.kernel.governor import Governor
from repro.kernel.recorders import (
    RECORDING_FULL,
    RunRecorder,
    recorders_for,
)
from repro.kernel.scheduler import Kernel, KernelConfig

#: The backend used when a caller passes ``backend=None``.
DEFAULT_BACKEND = "fastpath"

#: Environment variable overriding the default backend (see
#: :func:`resolve_backend`).  Explicit ``backend=`` arguments still win.
FORCE_BACKEND_ENV = "REPRO_FORCE_BACKEND"


class ExecutionBackend:
    """A named kernel factory the measurement layer drives.

    Subclasses implement :meth:`build_kernel` to return a ready-to-run
    kernel honouring the recording mode and any extra recorder taps.
    The contract every backend must keep: results are **bitwise
    identical** to the reference backend's, with or without observers
    attached (``tests/kernel/test_fastpath.py`` enforces it across every
    catalog policy × workload × machine).
    """

    #: Registry name (``"reference"``, ``"fastpath"``, ...).
    name: str = "?"

    def build_kernel(
        self,
        machine: Machine,
        governor: Optional[Governor] = None,
        config: Optional[KernelConfig] = None,
        recording: str = RECORDING_FULL,
        extra_recorders: Optional[Iterable[RunRecorder]] = None,
    ) -> Kernel:
        """Build a single-use kernel for one run."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


class ReferenceBackend(ExecutionBackend):
    """The oracle: the reference kernel with live recorder dispatch."""

    name = "reference"

    def build_kernel(
        self,
        machine: Machine,
        governor: Optional[Governor] = None,
        config: Optional[KernelConfig] = None,
        recording: str = RECORDING_FULL,
        extra_recorders: Optional[Iterable[RunRecorder]] = None,
    ) -> Kernel:
        recorders = recorders_for(
            recording, config if config is not None else KernelConfig()
        )
        if extra_recorders is not None:
            recorders.extend(extra_recorders)
        return Kernel(
            machine, governor=governor, config=config, recorders=recorders
        )


class FastpathBackend(ExecutionBackend):
    """The flattened hot loop; observers attach via replay-at-end taps."""

    name = "fastpath"

    def build_kernel(
        self,
        machine: Machine,
        governor: Optional[Governor] = None,
        config: Optional[KernelConfig] = None,
        recording: str = RECORDING_FULL,
        extra_recorders: Optional[Iterable[RunRecorder]] = None,
    ) -> Kernel:
        return FastKernel(
            machine,
            governor=governor,
            config=config,
            recording=recording,
            extra_recorders=extra_recorders,
        )


#: Name → backend registry.  The ``"batch"`` numpy backend plugs in here.
BACKENDS: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register ``backend`` under its :attr:`~ExecutionBackend.name`.

    Re-registration replaces the previous entry (latest wins), so tests
    can shadow a backend and restore it.
    """
    BACKENDS[backend.name] = backend
    return backend


register_backend(ReferenceBackend())
register_backend(FastpathBackend())


def backend_names() -> List[str]:
    """The registered backend names, sorted (CLI choices)."""
    return sorted(BACKENDS)


def resolve_backend(
    backend: Union[str, ExecutionBackend, None] = None,
) -> ExecutionBackend:
    """Resolve a caller's backend choice to a registered backend.

    ``None`` means "the default": :data:`DEFAULT_BACKEND`, unless the
    :data:`REPRO_FORCE_BACKEND` environment variable names another
    registered backend — the hook CI uses to run the whole tier-1 suite
    on the reference oracle.  An explicit name or instance always wins
    over the environment, so code that deliberately compares backends
    (the differential harness, the equivalence suite) stays meaningful
    under a forced run.

    Raises:
        ValueError: for names not in :data:`BACKENDS`.
    """
    if backend is None:
        backend = os.environ.get(FORCE_BACKEND_ENV) or DEFAULT_BACKEND
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; registered: "
            f"{', '.join(backend_names())}"
        ) from None
