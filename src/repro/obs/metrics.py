"""A process-local metrics registry: counters, gauges, histograms.

The paper's measurement rig is external (a 5 kHz DAQ on the power rail);
a software reproduction can afford *internal* counters too.  This module
is the smallest registry that covers the repository's needs:

- :class:`Counter` — monotonically increasing totals (quanta simulated,
  clock transitions, cache hits);
- :class:`Gauge` — last-written values (worker count, final MHz);
- :class:`Histogram` — streaming count/sum/min/max over observations
  (per-cell wall time, per-quantum utilization);
- :class:`MetricsRegistry` — a name-addressed collection of the above
  with :meth:`~MetricsRegistry.snapshot` / :meth:`~MetricsRegistry.merge`
  so worker-process registries fold back into the parent's across a
  :class:`~concurrent.futures.ProcessPoolExecutor` boundary.

Snapshots are plain frozen dataclasses of dicts and floats: they pickle
cleanly (for pool transport) and serialize to JSON (for run-logs).
Nothing here touches simulation state — attaching or merging metrics can
never change a result, and the kernel hot loop only pays for metrics when
a :class:`KernelMetricsRecorder` is explicitly attached (the kernel wires
up only overridden recorder hooks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.kernel.recorders import RunRecorder
from repro.traces.schema import FreqChange, QuantumRecord, VoltChange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.scheduler import KernelRun


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total.

        Raises:
            ValueError: for negative increments.
        """
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Picklable summary of a :class:`Histogram`."""

    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """The summary of both sets of observations combined."""
        return HistogramSnapshot(
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )


class Histogram:
    """Streaming count/sum/min/max over observed values."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> HistogramSnapshot:
        """The current summary as a frozen value."""
        return HistogramSnapshot(
            count=self.count, sum=self.sum, min=self.min, max=self.max
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, picklable image of a registry at one point in time.

    The unit that crosses process boundaries: workers snapshot their local
    registry and the parent merges the snapshots back in.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def to_json(self) -> dict:
        """A JSON-safe dict (histograms expand to their fields)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                }
                for name, h in self.histograms.items()
            },
        }


class MetricsRegistry:
    """Name-addressed counters/gauges/histograms for one process.

    Instruments get-or-create on first use, so call sites never need a
    registration step::

        registry.counter("kernel.quanta").inc()
        registry.histogram("sweep.cell_wall_s").observe(wall)
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        try:
            return self._counters[name]
        except KeyError:
            inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        try:
            return self._gauges[name]
        except KeyError:
            inst = self._gauges[name] = Gauge()
            return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        try:
            return self._histograms[name]
        except KeyError:
            inst = self._histograms[name] = Histogram()
            return inst

    def snapshot(self) -> MetricsSnapshot:
        """A frozen image of every instrument's current value."""
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            gauges={n: g.value for n, g in self._gauges.items()},
            histograms={n: h.snapshot() for n, h in self._histograms.items()},
        )

    def merge(self, snap: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value (last writer wins), matching their point-in-time semantics.
        """
        for name, value in snap.counters.items():
            self.counter(name).inc(value)
        for name, value in snap.gauges.items():
            self.gauge(name).set(value)
        for name, hist in snap.histograms.items():
            local = self.histogram(name)
            local.count += hist.count
            local.sum += hist.sum
            if hist.min < local.min:
                local.min = hist.min
            if hist.max > local.max:
                local.max = hist.max


def merge_snapshots(*snaps: Optional[MetricsSnapshot]) -> MetricsSnapshot:
    """Combine several snapshots (None entries are skipped)."""
    registry = MetricsRegistry()
    for snap in snaps:
        if snap is not None:
            registry.merge(snap)
    return registry.snapshot()


class KernelMetricsRecorder(RunRecorder):
    """Hot-loop counters as a pluggable kernel recorder.

    Counts the quantities the paper's instrumented kernel kept per run:
    quanta simulated, busy and idle microseconds, clock and voltage
    transitions with their stall/sag costs, and (at run end) raw deadline
    misses.  Attached like any other recorder, so runs without it pay
    nothing, and runs with it are bitwise-identical to runs without —
    recorders only observe.

    Metric names are prefixed ``kernel.`` by default; pass ``prefix`` to
    distinguish several instrumented kernels sharing one registry.

    The hot-loop hooks are bound C-level ``list.append``\\ s: observations
    are buffered and reduced to instrument updates once, in
    :meth:`contribute`.  The reduction walks the buffers in arrival order
    with the same arithmetic per event, so the flushed totals are bitwise
    equal to per-event instrument updates, at a fraction of the hot-loop
    cost.  The instruments themselves are created eagerly at
    construction, so a snapshot taken before (or without) a run still
    shows every metric name at zero.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str = "kernel"):
        self.registry = registry
        p = f"{prefix}." if prefix else ""
        self._quanta = registry.counter(f"{p}quanta")
        self._busy_us = registry.counter(f"{p}busy_us")
        self._idle_us = registry.counter(f"{p}idle_us")
        self._utilization = registry.histogram(f"{p}quantum_utilization")
        self._freq_changes = registry.counter(f"{p}freq_changes")
        self._stall_us = registry.counter(f"{p}clock_stall_us")
        self._volt_changes = registry.counter(f"{p}volt_changes")
        self._settle_us = registry.counter(f"{p}voltage_settle_us")
        self._misses = registry.counter(f"{p}deadline_misses")
        self._final_mhz = registry.gauge(f"{p}final_mhz")
        # Hot-loop buffers, reduced in contribute().
        self._quantum_rows: list = []
        self._bulk_quanta: Optional[Tuple[list, float]] = None
        self._freq_rows: list = []
        self._volt_rows: list = []
        self.on_quantum = self._quantum_rows.append
        self.on_freq_change = self._freq_rows.append
        self.on_volt_change = self._volt_rows.append

    def on_quantum(self, record: QuantumRecord) -> None:
        self._quantum_rows.append(record)

    def on_freq_change(self, change: FreqChange) -> None:
        self._freq_rows.append(change)

    def on_volt_change(self, change: VoltChange) -> None:
        self._volt_rows.append(change)

    def replay_quantum_rows(self, rows: list, quantum_us: float) -> None:
        # Bulk form: keep the shared row buffer and reduce it directly in
        # contribute() -- no QuantumRecord per quantum.
        self._bulk_quanta = (rows, quantum_us)

    def contribute(self, run: "KernelRun") -> None:
        # Reduce whichever form the backend delivered: per-record
        # captures, or a bulk row buffer with the constant quantum
        # length.  Both walks visit (busy, quantum) pairs in arrival
        # order with the same arithmetic, so the totals are bitwise
        # equal either way.
        # The two branches below duplicate the reduction body on purpose:
        # a shared (busy, quantum) pair list or generator costs more than
        # the reduction itself at 100k+ quanta.  Keep the arithmetic in
        # both branches identical token-for-token — the equivalence suite
        # compares their snapshots bitwise.
        busy_sum = idle_sum = 0.0
        u_sum = 0.0
        u_min = float("inf")
        u_max = float("-inf")
        if self._bulk_quanta is not None:
            rows, quantum = self._bulk_quanta
            n = len(rows)
            quantum_positive = quantum > 0
            for row in rows:
                busy = row[1]
                busy_sum += busy
                idle = quantum - busy
                idle_sum += idle if idle > 0.0 else 0.0
                # Inlined QuantumRecord.utilization (same ops,
                # bitwise-equal).
                u = busy / quantum if quantum_positive else 0.0
                if u < 0.0:
                    u = 0.0
                elif u > 1.0:
                    u = 1.0
                u_sum += u
                if u < u_min:
                    u_min = u
                if u > u_max:
                    u_max = u
        else:
            n = len(self._quantum_rows)
            for record in self._quantum_rows:
                busy = record.busy_us
                quantum = record.quantum_us
                busy_sum += busy
                idle = quantum - busy
                idle_sum += idle if idle > 0.0 else 0.0
                # Inlined QuantumRecord.utilization (same ops,
                # bitwise-equal).
                u = busy / quantum if quantum > 0 else 0.0
                if u < 0.0:
                    u = 0.0
                elif u > 1.0:
                    u = 1.0
                u_sum += u
                if u < u_min:
                    u_min = u
                if u > u_max:
                    u_max = u
        self._quanta.inc(n)
        self._busy_us.inc(busy_sum)
        self._idle_us.inc(idle_sum)
        hist = self._utilization
        hist.count += n
        hist.sum += u_sum
        if u_min < hist.min:
            hist.min = u_min
        if u_max > hist.max:
            hist.max = u_max
        stall_sum = 0.0
        for change in self._freq_rows:
            stall_sum += change.stall_us
        self._freq_changes.inc(len(self._freq_rows))
        self._stall_us.inc(stall_sum)
        settle_sum = 0.0
        for change in self._volt_rows:
            settle_sum += change.settle_us
        self._volt_changes.inc(len(self._volt_rows))
        self._settle_us.inc(settle_sum)
        # Raw misses (zero tolerance): the recorder cannot know workload
        # perceptibility thresholds; tolerance-aware counts stay with the
        # measurement layer.
        self._misses.inc(sum(1 for e in run.events if e.lateness_us > 0.0))
        # Prefer the run's quantum statistics for the final clock: a
        # replaying backend keeps them alongside lazily-materialized
        # quanta, and reading `run.quanta` first would force that
        # materialization just for one float (same value either way).
        stats = run.quantum_stats
        if stats is not None and stats.count:
            self._final_mhz.set(stats.final_mhz)
        elif run.quanta:
            self._final_mhz.set(run.quanta[-1].mhz)
