"""Sweep reports: aggregate run-logs (+ diagnoses) into one document.

A finished sweep leaves two artifacts behind: the JSONL run-log (one
audit record per cell) and, when diagnosis was enabled, a JSONL diagnosis
log (one :class:`~repro.obs.diagnose.PolicyDiagnosis` per executed cell).
This module folds them into a single self-contained report — Table-2
style rows per policy x workload x machine, with settling verdicts and
energy decompositions joined in where available — rendered as markdown
or as standalone HTML (inline CSS, no external assets, opens from a CI
artifact without a web server).  Committed ``BENCH_*.json`` perf records
can ride along as a "Perf history" section, so one document carries both
the science and the cost of producing it.  Fleet-ledger sweeps render as
a "Fleet history" section — per-sweep table with host-normalized
throughput, an aggregated phase-time table, and (in HTML) the inline-SVG
trend curves from :mod:`repro.obs.plot`.

Rendering is pure: the same records produce the same document, so report
snapshots can be golden-tested.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from html import escape
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.diagnose import PolicyDiagnosis
from repro.obs.fleet import FleetRecord, throughput_trend
from repro.obs.runlog import provenance_warnings

#: Renderer names accepted by :func:`render_report`.
FORMAT_MARKDOWN = "md"
FORMAT_HTML = "html"


@dataclass
class ReportRow:
    """Aggregate of every run-log record sharing one sweep cell label."""

    policy: str
    workload: str
    machine: str
    runs: int = 0
    cache_hits: int = 0
    energy_sum_j: float = 0.0
    energy_min_j: float = float("inf")
    energy_max_j: float = float("-inf")
    miss_count: int = 0
    wall_s: float = 0.0
    diagnoses: List[PolicyDiagnosis] = field(default_factory=list)

    @property
    def mean_energy_j(self) -> float:
        """Average measured energy across the row's runs."""
        return self.energy_sum_j / self.runs if self.runs else 0.0

    @property
    def settled_verdict(self) -> Optional[str]:
        """``"settles"`` / ``"oscillates"`` from the joined diagnoses."""
        if not self.diagnoses:
            return None
        return (
            "settles"
            if all(d.settling.settled for d in self.diagnoses)
            else "oscillates"
        )

    @property
    def mean_excess_j(self) -> Optional[float]:
        """Average energy above the oracle baseline, when diagnosed."""
        feasible = [
            d.energy.excess_j
            for d in self.diagnoses
            if d.energy.baseline_feasible
        ]
        if not feasible:
            return None
        return sum(feasible) / len(feasible)


@dataclass(frozen=True)
class SweepReport:
    """The aggregated content of one run-log, ready to render."""

    rows: Tuple[ReportRow, ...]
    warnings: Tuple[str, ...]
    total_runs: int
    total_cache_hits: int
    total_wall_s: float
    #: committed ``BENCH_*.json`` benchmark records, rendered as a
    #: "Perf history" section when present.
    bench: Tuple[dict, ...] = ()
    #: fleet-ledger sweep records, rendered as a "Fleet history" section
    #: (per-sweep table + throughput trend line) when present.
    fleet: Tuple[FleetRecord, ...] = ()


def build_report(
    records: Sequence[dict],
    diagnoses: Sequence[PolicyDiagnosis] = (),
    bench_records: Sequence[dict] = (),
    fleet_records: Sequence[FleetRecord] = (),
) -> SweepReport:
    """Aggregate run-log records (and optional diagnoses) into a report.

    Records group by ``(policy, workload, machine)``; diagnoses join onto
    their matching group by the same labels.  Diagnoses without a
    matching record still appear (as diagnosis-only rows), so a report
    built from a diagnosis log alone is not empty.  ``bench_records``
    (parsed ``BENCH_*.json`` perf records, as the benchmark suite
    commits at the repo root) are carried through verbatim and rendered
    as a "Perf history" section; ``fleet_records`` (parsed fleet-ledger
    sweeps) render as a "Fleet history" section with a throughput trend.
    Reader-level warnings attached to ``records`` (the tolerant
    :func:`~repro.obs.runlog.read_run_log` reports skipped lines there)
    surface next to the provenance warnings.
    """
    rows: Dict[Tuple[str, str, str], ReportRow] = {}

    def row_for(key: Tuple[str, str, str]) -> ReportRow:
        if key not in rows:
            rows[key] = ReportRow(*key)
        return rows[key]

    for record in records:
        row = row_for(
            (
                str(record.get("policy", "?")),
                str(record.get("workload", "?")),
                str(record.get("machine", "?")),
            )
        )
        row.runs += 1
        if record.get("cache") == "hit":
            row.cache_hits += 1
        energy = float(record.get("energy_j", 0.0))
        row.energy_sum_j += energy
        row.energy_min_j = min(row.energy_min_j, energy)
        row.energy_max_j = max(row.energy_max_j, energy)
        row.miss_count += int(record.get("miss_count", 0))
        row.wall_s += float(record.get("wall_s", 0.0))

    for diagnosis in diagnoses:
        row_for(
            (diagnosis.policy, diagnosis.workload, diagnosis.machine)
        ).diagnoses.append(diagnosis)

    ordered = tuple(
        rows[key] for key in sorted(rows, key=lambda k: (k[1], k[2], k[0]))
    )
    reader_warnings = tuple(getattr(records, "warnings", ()))
    return SweepReport(
        rows=ordered,
        warnings=reader_warnings + tuple(provenance_warnings(list(records))),
        total_runs=sum(r.runs for r in ordered),
        total_cache_hits=sum(r.cache_hits for r in ordered),
        total_wall_s=sum(r.wall_s for r in ordered),
        bench=tuple(bench_records),
        fleet=tuple(fleet_records),
    )


def load_bench_records(
    specs: Sequence[Union[str, Path]]
) -> List[dict]:
    """Load committed ``BENCH_*.json`` perf records from path specs.

    Each spec may be a JSON file, a directory (every ``BENCH_*.json``
    directly inside it), or a glob pattern.  Records are ordered by
    their recorded ``unix_time`` when present, else the file's mtime,
    with the full file path breaking ties — mtimes quantize coarsely on
    some filesystems (and records from one ``cp -r`` share one), and
    two directories may each hold a ``BENCH_foo.json``, so the bare
    name is not a total order.  The perf-history section therefore
    reads oldest-to-newest regardless of argument order, every time.

    Raises:
        ValueError: when a spec matches nothing or a file is not JSON.
    """
    paths: List[Path] = []
    for spec in specs:
        path = Path(spec)
        if path.is_dir():
            matches = sorted(path.glob("BENCH_*.json"))
        elif path.exists():
            matches = [path]
        else:
            matches = sorted(path.parent.glob(path.name))
        if not matches:
            raise ValueError(f"no benchmark records match {spec!r}")
        paths.extend(matches)
    seen = set()
    loaded: List[Tuple[float, str, dict]] = []
    for path in paths:
        if path in seen:
            continue
        seen.add(path)
        try:
            record = json.loads(path.read_text())
        except ValueError as exc:
            raise ValueError(f"{path}: not a JSON benchmark record: {exc}") from None
        if not isinstance(record, dict):
            raise ValueError(f"{path}: benchmark record is not a JSON object")
        stamp = record.get("unix_time")
        if not isinstance(stamp, (int, float)):
            try:
                stamp = path.stat().st_mtime
            except OSError:
                stamp = time.time()
        loaded.append((float(stamp), str(path), record))
    loaded.sort(key=lambda item: (item[0], item[1]))
    return [record for _, _, record in loaded]


def render_report(report: SweepReport, fmt: str = FORMAT_MARKDOWN) -> str:
    """Render a report as markdown or standalone HTML.

    Raises:
        ValueError: for unknown format names.
    """
    if fmt == FORMAT_MARKDOWN:
        return _render_markdown(report)
    if fmt == FORMAT_HTML:
        return _render_html(report)
    raise ValueError(
        f"unknown report format {fmt!r}; "
        f"expected {FORMAT_MARKDOWN!r} or {FORMAT_HTML!r}"
    )


def _fmt(value: Optional[float], digits: int = 2) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def _row_cells(row: ReportRow) -> List[str]:
    spread = (
        f"{row.energy_min_j:.2f}..{row.energy_max_j:.2f}" if row.runs else "-"
    )
    return [
        row.policy,
        row.workload,
        row.machine,
        str(row.runs),
        str(row.cache_hits),
        _fmt(row.mean_energy_j if row.runs else None),
        spread,
        str(row.miss_count),
        row.settled_verdict or "-",
        _fmt(row.mean_excess_j),
    ]


_HEADER = [
    "policy",
    "workload",
    "machine",
    "runs",
    "cached",
    "mean J",
    "spread J",
    "misses",
    "settling",
    "excess J",
]

_BENCH_HEADER = ["benchmark", "headline", "bar", "setup"]

_FLEET_HEADER = [
    "sweep",
    "when",
    "command",
    "grid",
    "cells",
    "cached",
    "cells/s",
    "norm/s",
    "wall s",
    "backend",
    "jobs",
]


def _fleet_cells(record: FleetRecord) -> List[str]:
    """One fleet-history table row from a ledger sweep record."""
    when = time.strftime(
        "%Y-%m-%d %H:%M", time.localtime(record.unix_time)
    )
    grid = (
        f"{len(record.policies)}p x {len(record.workloads)}w x "
        f"{len(record.machines)}m x {record.seeds}s"
    )
    norm = record.normalized_cells_per_s
    return [
        record.sweep_id,
        when,
        record.command or "-",
        grid,
        str(record.cells_total),
        str(record.cells_cached),
        f"{record.cells_per_s:.1f}",
        f"{norm:.1f}" if norm is not None else "-",
        f"{record.wall_s:.1f}",
        record.backend or "-",
        str(record.jobs),
    ]


def _bench_cells(record: dict) -> List[str]:
    """One perf-history table row from a committed ``BENCH_*.json`` dict.

    Knows the headline figure of each benchmark the suite commits;
    records from future benchmarks fall back to a generic numeric dump
    so the section never fails to render.
    """
    name = str(record.get("benchmark", "?"))
    setup = "-"
    if record.get("machine"):
        setup = (
            f"{record['machine']}, {record.get('duration_s', '?')} s "
            f"{record.get('workload', '?')}"
        )
    if name == "kernel_hotloop" and "fastpath_speedup" in record:
        return [
            name,
            f"fastpath {record['fastpath_speedup']:g}x over full recorders",
            f">= {record.get('min_fastpath_speedup', '?')}x",
            setup,
        ]
    if name == "obs_overhead" and "enabled_overhead_pct" in record:
        return [
            name,
            f"enabled +{record['enabled_overhead_pct']:g}%, "
            f"disabled +{record.get('disabled_overhead_pct', 0):g}%",
            f"<= {record.get('max_enabled_overhead_pct', '?')}% / "
            f"{record.get('max_disabled_overhead_pct', '?')}%",
            setup,
        ]
    if name == "telemetry_overhead" and "telemetry_overhead_pct" in record:
        return [
            name,
            f"telemetry +{record['telemetry_overhead_pct']:g}% "
            f"({record.get('worker_lanes', '?')} worker lanes)",
            f"<= {record.get('max_telemetry_overhead_pct', '?')}%",
            setup,
        ]
    if name == "profile_overhead" and "profile_overhead_pct" in record:
        return [
            name,
            f"phase profiling +{record['profile_overhead_pct']:g}% "
            f"({record.get('phases_seen', '?')} phases, "
            f"{record.get('coverage_pct', '?')}% wall accounted)",
            f"<= {record.get('max_profile_overhead_pct', '?')}%",
            setup,
        ]
    if name == "sweep_throughput" and "new_cells_per_s" in record:
        return [
            name,
            f"{record['new_cells_per_s']:g} cells/s "
            f"({record.get('speedup', '?')}x over legacy)",
            f">= {record.get('min_speedup', '?')}x",
            setup,
        ]
    numbers = ", ".join(
        f"{k}={v:g}"
        for k, v in sorted(record.items())
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    )
    return [name, numbers or "-", "-", setup]


def _fleet_phase_seconds(
    fleet: Sequence[FleetRecord],
) -> Dict[str, float]:
    """Summed per-phase busy seconds across the fleet records.

    Sweeps recorded before the phase profiler (schema v1) contribute
    nothing; an empty dict suppresses the phase section entirely.
    """
    totals: Dict[str, float] = {}
    for record in fleet:
        for phase, seconds in record.phases:
            totals[phase] = totals.get(phase, 0.0) + seconds
    return totals


def _render_markdown(report: SweepReport) -> str:
    lines = ["# Sweep report", ""]
    lines.append(
        f"{report.total_runs} runs ({report.total_cache_hits} cached), "
        f"{report.total_wall_s:.1f} s simulated wall time."
    )
    lines.append("")
    for warning in report.warnings:
        lines.append(f"> **warning:** {warning}")
    if report.warnings:
        lines.append("")
    if report.rows:
        lines.append("| " + " | ".join(_HEADER) + " |")
        lines.append("|" + "|".join(["---"] * len(_HEADER)) + "|")
        for row in report.rows:
            lines.append("| " + " | ".join(_row_cells(row)) + " |")
        lines.append("")

    diagnosed = [row for row in report.rows if row.diagnoses]
    if diagnosed:
        lines.append("## Diagnoses")
        lines.append("")
        for row in diagnosed:
            for d in row.diagnoses:
                s = d.settling
                e = d.energy
                verdict = "settles" if s.settled else "oscillates"
                period = (
                    f", dominant period {s.dominant_period_quanta:.1f} quanta"
                    if s.dominant_period_quanta is not None
                    else ""
                )
                base = (
                    f"{e.baseline_j:.2f} J oracle + {e.overshoot_j:.2f} J "
                    f"overshoot"
                    if e.baseline_feasible
                    else f"{e.overshoot_j:.2f} J (no feasible constant step)"
                )
                lines.append(
                    f"- **{d.policy} / {d.workload}** (seed {d.seed}): "
                    f"{verdict} ({s.churn_per_quantum:.3f} changes/quantum"
                    f"{period}); {d.misses} misses; "
                    f"{e.measured_j:.2f} J = {base} + "
                    f"{e.stall_j:.2f} J stall + {e.sag_j:.4f} J sag"
                )
        lines.append("")

    if report.bench:
        lines.append("## Perf history")
        lines.append("")
        lines.append("| " + " | ".join(_BENCH_HEADER) + " |")
        lines.append("|" + "|".join(["---"] * len(_BENCH_HEADER)) + "|")
        for record in report.bench:
            lines.append("| " + " | ".join(_bench_cells(record)) + " |")
        lines.append("")

    if report.fleet:
        lines.append("## Fleet history")
        lines.append("")
        lines.append(throughput_trend(report.fleet))
        lines.append("")
        lines.append("| " + " | ".join(_FLEET_HEADER) + " |")
        lines.append("|" + "|".join(["---"] * len(_FLEET_HEADER)) + "|")
        for record in sorted(report.fleet, key=lambda r: r.unix_time):
            lines.append("| " + " | ".join(_fleet_cells(record)) + " |")
        lines.append("")
        phase_totals = _fleet_phase_seconds(report.fleet)
        if phase_totals:
            from repro.obs.profile import format_phase_table

            lines.append("### Where the time went")
            lines.append("")
            lines.append("```")
            lines.append(format_phase_table(phase_totals))
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


_HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 70em; color: #1a1a2e; }
table { border-collapse: collapse; width: 100%; margin: 1em 0; }
th, td { border: 1px solid #c8c8d8; padding: 0.3em 0.6em;
         text-align: left; }
th { background: #eef; }
tr:nth-child(even) td { background: #f7f7fc; }
.warning { background: #fff3cd; border: 1px solid #e0c060;
           padding: 0.5em 1em; margin: 0.5em 0; }
.oscillates { color: #b02a37; font-weight: 600; }
.settles { color: #2a7d4f; font-weight: 600; }
""".strip()


def _render_html(report: SweepReport) -> str:
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>Sweep report</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        "<h1>Sweep report</h1>",
        f"<p>{report.total_runs} runs ({report.total_cache_hits} cached), "
        f"{report.total_wall_s:.1f} s simulated wall time.</p>",
    ]
    for warning in report.warnings:
        parts.append(f'<div class="warning">{escape(warning)}</div>')
    if report.rows:
        parts.append("<table><tr>")
        parts.extend(f"<th>{escape(h)}</th>" for h in _HEADER)
        parts.append("</tr>")
        for row in report.rows:
            cells = _row_cells(row)
            parts.append("<tr>")
            for header, cell in zip(_HEADER, cells):
                if header == "settling" and cell != "-":
                    parts.append(f'<td class="{cell}">{escape(cell)}</td>')
                else:
                    parts.append(f"<td>{escape(cell)}</td>")
            parts.append("</tr>")
        parts.append("</table>")

    diagnosed = [row for row in report.rows if row.diagnoses]
    if diagnosed:
        parts.append("<h2>Diagnoses</h2><ul>")
        for row in diagnosed:
            for d in row.diagnoses:
                s = d.settling
                e = d.energy
                cls = "settles" if s.settled else "oscillates"
                verdict = "settles" if s.settled else "oscillates"
                parts.append(
                    f"<li><b>{escape(d.policy)} / {escape(d.workload)}</b> "
                    f"(seed {d.seed}): "
                    f'<span class="{cls}">{verdict}</span> '
                    f"({s.churn_per_quantum:.3f} changes/quantum); "
                    f"{d.misses} misses; {e.measured_j:.2f} J measured, "
                    f"{e.stall_j:.2f} J stall, {e.sag_j:.4f} J sag</li>"
                )
        parts.append("</ul>")

    if report.bench:
        parts.append("<h2>Perf history</h2>")
        parts.append("<table><tr>")
        parts.extend(f"<th>{escape(h)}</th>" for h in _BENCH_HEADER)
        parts.append("</tr>")
        for record in report.bench:
            parts.append("<tr>")
            parts.extend(
                f"<td>{escape(cell)}</td>" for cell in _bench_cells(record)
            )
            parts.append("</tr>")
        parts.append("</table>")

    if report.fleet:
        parts.append("<h2>Fleet history</h2>")
        parts.append(f"<p>{escape(throughput_trend(report.fleet))}</p>")
        # Inline-SVG trend curves: throughput, cache-hit rate, phase mix
        # over commits — self-contained, no scripts or external assets.
        from repro.obs.plot import fleet_charts

        for svg in fleet_charts(sorted(report.fleet, key=lambda r: r.unix_time)):
            parts.append(svg)
        parts.append("<table><tr>")
        parts.extend(f"<th>{escape(h)}</th>" for h in _FLEET_HEADER)
        parts.append("</tr>")
        for record in sorted(report.fleet, key=lambda r: r.unix_time):
            parts.append("<tr>")
            parts.extend(
                f"<td>{escape(cell)}</td>" for cell in _fleet_cells(record)
            )
            parts.append("</tr>")
        parts.append("</table>")
        phase_totals = _fleet_phase_seconds(report.fleet)
        if phase_totals:
            from repro.obs.profile import format_phase_table

            parts.append("<h3>Where the time went</h3>")
            parts.append(
                "<pre>" + escape(format_phase_table(phase_totals)) + "</pre>"
            )
    parts.append("</body></html>")
    return "\n".join(parts)
