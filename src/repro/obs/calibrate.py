"""Host calibration: make fleet records from different machines comparable.

A cells/s figure from a laptop and one from a CI runner measure two
different machines as much as they measure the code.  This module runs a
~2 s deterministic microbenchmark — repeated best-of passes of a fixed
MPEG simulation through the default execution backend, the same hot loop
every sweep cell spends its time in — and derives a dimensionless **host
score**: ``1.0`` on the nominal reference host, ``2.0`` on a machine
twice as fast.  The score is cached in ``.repro/host.json`` (next to the
fleet ledger) and stamped into every subsequent
:class:`~repro.obs.fleet.FleetRecord`, so ``repro fleet`` can divide the
raw throughput out into *normalized* cells/s before comparing records or
checking for regressions.

The probe is a pure function of the simulator (fixed workload, seed,
machine, no DAQ), so a score moves only when the host — or the
simulator's own hot-loop performance — does.  That ambiguity is
deliberate: the sentinel compares sweeps *normalized by the score taken
on the same host*, so host changes cancel and code regressions remain.

Uncalibrated hosts read as score ``0.0`` ("unknown"); consumers fall
back to raw throughput.  Run ``repro calibrate`` once per machine (and
after hardware changes) to stamp it.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional, Union

#: Bump when the probe workload or scoring changes: old scores are then
#: not comparable and are ignored on read.
CALIBRATION_VERSION = 1

#: Where the score lives, next to the fleet ledger (repo-local,
#: gitignored operational state — scores are per-machine, never shared).
DEFAULT_HOST_PATH = Path(".repro") / "host.json"

#: Wall seconds one probe pass takes on the nominal reference host
#: (score 1.0).  Chosen once when the probe was defined; never retune
#: without bumping :data:`CALIBRATION_VERSION`.
NOMINAL_PROBE_WALL_S = 0.024

#: Simulated seconds of MPEG per probe pass.  Sized so a handful of
#: passes fit the ~2 s calibration budget on hosts within ~4x of
#: nominal, while each pass is long enough to dominate per-pass setup.
PROBE_DURATION_S = 30.0


@dataclass(frozen=True)
class HostCalibration:
    """One host's cached calibration result.

    Attributes:
        score: nominal probe wall / this host's best probe wall
            (dimensionless; higher = faster host).
        probe_wall_s: best-of-N wall seconds of one probe pass.
        passes: probe repetitions measured within the budget.
        unix_time: when the calibration ran.
        hostname / machine / python: fingerprint of what was measured,
            for the human reading ``host.json`` — never compared.
        version: :data:`CALIBRATION_VERSION` at calibration time.
    """

    score: float
    probe_wall_s: float
    passes: int
    unix_time: float
    hostname: str
    machine: str
    python: str
    version: int = CALIBRATION_VERSION

    def to_json(self) -> dict:
        return asdict(self)


def _probe_pass() -> float:
    """One deterministic probe simulation; returns its wall seconds.

    Imported lazily: calibration is the only reason this module needs
    the simulator, and :mod:`repro.measure.parallel` imports the
    sibling :func:`host_score` at module load.
    """
    from repro.kernel.recorders import RECORDING_MINIMAL
    from repro.measure.parallel import PolicySpec, SweepCell, WorkloadSpec
    from repro.workloads.mpeg import MpegConfig

    cell = SweepCell(
        workload=WorkloadSpec(
            "mpeg", MpegConfig(duration_s=PROBE_DURATION_S)
        ),
        policy=PolicySpec("best"),
        seed=0,
        use_daq=False,
        recording=RECORDING_MINIMAL,
    )
    start = perf_counter()
    cell.run()
    return perf_counter() - start


def calibrate(budget_s: float = 2.0) -> HostCalibration:
    """Measure this host: repeat the probe within ``budget_s``, keep the
    best pass (the least-disturbed one), and score against nominal.

    One warm-up pass absorbs import and allocator effects before timing
    starts; at least two timed passes always run, budget permitting the
    loop continues until ``budget_s`` is spent.
    """
    _probe_pass()  # warm-up, untimed
    best = float("inf")
    passes = 0
    t0 = perf_counter()
    while passes < 2 or perf_counter() - t0 < budget_s:
        best = min(best, _probe_pass())
        passes += 1
        if passes >= 64:  # absurdly fast host; enough samples
            break
    return HostCalibration(
        score=NOMINAL_PROBE_WALL_S / best,
        probe_wall_s=best,
        passes=passes,
        unix_time=time.time(),
        hostname=socket.gethostname(),
        machine=f"{platform.system()} {platform.machine()}",
        python=platform.python_version(),
    )


def save_calibration(
    cal: HostCalibration, path: Union[str, Path] = DEFAULT_HOST_PATH
) -> Path:
    """Write the calibration cache (creating ``.repro/`` if needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(cal.to_json(), indent=2, sort_keys=True) + "\n")
    _SCORE_CACHE.pop(str(path.resolve()), None)
    return path


def load_calibration(
    path: Union[str, Path] = DEFAULT_HOST_PATH
) -> Optional[HostCalibration]:
    """Read a cached calibration; None when absent, damaged or stale.

    A missing or unreadable cache is the common "never calibrated"
    case, not an error; a version mismatch means the probe changed and
    the old score is not comparable, so it reads as uncalibrated too.
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict) or raw.get("version") != CALIBRATION_VERSION:
        return None
    known = {f for f in HostCalibration.__dataclass_fields__}
    try:
        cal = HostCalibration(**{k: v for k, v in raw.items() if k in known})
    except TypeError:
        return None
    if not isinstance(cal.score, (int, float)) or cal.score <= 0:
        return None
    return cal


#: Per-path score memo: sweeps stamp every fleet record, and the score
#: cannot change under a running process (``repro calibrate`` is a
#: separate invocation).
_SCORE_CACHE: Dict[str, float] = {}


def host_score(path: Union[str, Path, None] = None) -> float:
    """This host's calibration score, or ``0.0`` when uncalibrated.

    Honors ``REPRO_HOST_CALIBRATION`` as a path override (tests and CI
    point it at a scratch file) ahead of the default repo-local cache.
    """
    if path is None:
        path = os.environ.get("REPRO_HOST_CALIBRATION") or DEFAULT_HOST_PATH
    key = str(Path(path).resolve())
    if key not in _SCORE_CACHE:
        cal = load_calibration(path)
        _SCORE_CACHE[key] = cal.score if cal is not None else 0.0
    return _SCORE_CACHE[key]
