"""The persistent fleet ledger: one JSONL record per completed sweep.

ROADMAP calls for "a queryable fleet dashboard, not just a batch
runner".  The run-log (:mod:`repro.obs.runlog`) audits individual
*cells*; this module audits *sweeps*: every engine run appends one
schema-versioned :class:`FleetRecord` — grid axes, cells
simulated/cached, throughput, wall time, backend, package version, git
sha — to a repo-local ledger (``.repro/fleet.jsonl`` by default).  The
``repro fleet`` CLI command lists and filters the ledger, summarizes
the throughput trend, and renders the combined perf trajectory —
ledger sweeps alongside the committed ``BENCH_*.json`` history —
through the existing markdown/HTML report path.

Like the run-log, the ledger is append-only JSONL, flushed per line,
and safe to concatenate.  Its reader tolerates a truncated or corrupt
trailing line (the crashed-mid-write case) by skipping it with a
provenance warning instead of raising — history should survive a crash.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, List, Optional, Sequence, Tuple, Union

import repro

#: Bump when the fleet record layout changes incompatibly.
FLEET_SCHEMA_VERSION = 1

#: Default repo-local ledger location (gitignored; the ledger is local
#: operational history, not committed state).
DEFAULT_FLEET_PATH = Path(".repro") / "fleet.jsonl"

_SPARK_BARS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class FleetRecord:
    """One completed sweep's ledger entry.

    Attributes:
        sweep_id: short unique id (timestamp + pid derived).
        unix_time: wall-clock time the sweep finished.
        command: the CLI subcommand (or caller-supplied tag) that ran
            the sweep; empty for library use.
        policies: sorted unique policy labels in the grid.
        workloads: sorted unique workload names.
        machines: sorted unique machine spec strings.
        seeds: count of distinct seeds in the grid.
        cells_total: unique cells served (executed + cached).
        cells_executed: cells actually simulated.
        cells_cached: cells answered from the result cache.
        wall_s: end-to-end sweep wall time.
        cells_per_s: throughput over unique cells.
        backend: execution backend name used for the sweep.
        jobs: worker processes (1 = in-process serial).
        repro_version: simulator package version.
        git_sha: repo HEAD at sweep time ("" outside a checkout).
    """

    sweep_id: str
    unix_time: float
    command: str
    policies: Tuple[str, ...]
    workloads: Tuple[str, ...]
    machines: Tuple[str, ...]
    seeds: int
    cells_total: int
    cells_executed: int
    cells_cached: int
    wall_s: float
    cells_per_s: float
    backend: str
    jobs: int
    repro_version: str = repro.__version__
    git_sha: str = ""

    def to_json(self) -> dict:
        """The record as a JSON-safe dict, version-stamped."""
        payload = asdict(self)
        payload["policies"] = list(self.policies)
        payload["workloads"] = list(self.workloads)
        payload["machines"] = list(self.machines)
        return {"v": FLEET_SCHEMA_VERSION, **payload}

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cells answered from the cache."""
        return self.cells_cached / self.cells_total if self.cells_total else 0.0


class FleetLedger:
    """Appends :class:`FleetRecord` lines to the ledger file.

    Mirrors :class:`repro.obs.runlog.RunLogWriter`: lazy open on first
    write (configuring a ledger path never creates an empty file),
    flush per record, idempotent :meth:`close`, context-manager ready.
    """

    def __init__(self, path: Union[str, Path] = DEFAULT_FLEET_PATH):
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        self.written = 0

    def append(self, record: FleetRecord) -> None:
        """Append one sweep record and flush it to disk."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        """Close the underlying file (no-op if never written to)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FleetLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True)
class FleetHistory:
    """A parsed ledger: records plus reader-level provenance warnings."""

    records: Tuple[FleetRecord, ...]
    warnings: Tuple[str, ...] = ()


def read_fleet(path: Union[str, Path]) -> FleetHistory:
    """Parse the fleet ledger, tolerating damaged lines.

    Unlike a run-log (where a bad line voids the cell audit), the fleet
    ledger is operational history — a truncated trailing line from a
    crashed sweep must not make every *earlier* sweep unreadable.  Bad
    lines are skipped and reported in ``warnings``.
    """
    records: List[FleetRecord] = []
    warnings: List[str] = []
    path = Path(path)
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                if not isinstance(raw, dict):
                    raise ValueError("not a JSON object")
                records.append(_from_json(raw))
            except (ValueError, TypeError, KeyError) as exc:
                warnings.append(
                    f"{path}:{lineno}: skipped unreadable fleet record "
                    f"(truncated write?): {exc}"
                )
    return FleetHistory(records=tuple(records), warnings=tuple(warnings))


def _from_json(raw: dict) -> FleetRecord:
    known = {f for f in FleetRecord.__dataclass_fields__}
    kwargs = {k: v for k, v in raw.items() if k in known}
    for axis in ("policies", "workloads", "machines"):
        kwargs[axis] = tuple(kwargs.get(axis, ()))
    return FleetRecord(**kwargs)


def new_sweep_id(unix_time: Optional[float] = None) -> str:
    """A short, human-sortable sweep id: ``20260809T143205-4f21``."""
    if unix_time is None:
        unix_time = time.time()
    stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(unix_time))
    suffix = f"{(os.getpid() * 2654435761 + int(unix_time * 1e6)) & 0xFFFF:04x}"
    return f"{stamp}-{suffix}"


def git_sha(cwd: Union[str, Path, None] = None) -> str:
    """The repo's HEAD sha, or ``""`` when git/repo is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of ``values`` (empty string for no values)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_BARS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_BARS) - 1))
        out.append(_SPARK_BARS[idx])
    return "".join(out)


def throughput_trend(records: Sequence[FleetRecord]) -> str:
    """A one-line throughput trend over the ledger, oldest first.

    ``throughput trend (cells/s): 5.7 → 19.3 (3.39x) ▁▃█`` — only
    sweeps that executed at least one cell count (an all-cached sweep's
    "throughput" measures the cache, not the engine).
    """
    measured = [r for r in sorted(records, key=lambda r: r.unix_time)
                if r.cells_executed > 0 and r.cells_per_s > 0]
    if not measured:
        return "throughput trend: no executed sweeps recorded yet"
    rates = [r.cells_per_s for r in measured]
    first, last = rates[0], rates[-1]
    trend = f"throughput trend (cells/s): {first:.1f} → {last:.1f}"
    if first > 0:
        trend += f" ({last / first:.2f}x)"
    spark = sparkline(rates)
    if len(rates) > 1:
        trend += f" {spark}"
    return trend
