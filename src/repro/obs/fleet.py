"""The persistent fleet ledger: one JSONL record per completed sweep.

ROADMAP calls for "a queryable fleet dashboard, not just a batch
runner".  The run-log (:mod:`repro.obs.runlog`) audits individual
*cells*; this module audits *sweeps*: every engine run appends one
schema-versioned :class:`FleetRecord` — grid axes, cells
simulated/cached, throughput, wall time, backend, package version, git
sha — to a repo-local ledger (``.repro/fleet.jsonl`` by default).  The
``repro fleet`` CLI command lists and filters the ledger, summarizes
the throughput trend, and renders the combined perf trajectory —
ledger sweeps alongside the committed ``BENCH_*.json`` history —
through the existing markdown/HTML report path.

Records from different machines compare through the host calibration
score (:mod:`repro.obs.calibrate`) stamped into each record, and the
:func:`check_fleet` sentinel turns the ledger into a self-checking perf
observatory: ``repro fleet --check`` fails when the newest sweep's
normalized throughput (or cache-hit rate) falls off its robust
baseline, naming the per-phase culprit from the stored
:mod:`~repro.obs.profile` attribution.

Like the run-log, the ledger is append-only JSONL, flushed per line,
and safe to concatenate.  Its reader tolerates a truncated or corrupt
trailing line (the crashed-mid-write case) by skipping it with a
provenance warning instead of raising — history should survive a crash.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

import repro

#: Bump when the fleet record layout changes incompatibly.
#: Version 2 added host calibration (``host_score``) and the per-phase
#: wall-time attribution (``phases``); v1 records read fine (both fields
#: default to "unknown") and v1 readers ignore the new fields.
FLEET_SCHEMA_VERSION = 2

#: Default repo-local ledger location (gitignored; the ledger is local
#: operational history, not committed state).
DEFAULT_FLEET_PATH = Path(".repro") / "fleet.jsonl"

_SPARK_BARS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class FleetRecord:
    """One completed sweep's ledger entry.

    Attributes:
        sweep_id: short unique id (timestamp + pid derived).
        unix_time: wall-clock time the sweep finished.
        command: the CLI subcommand (or caller-supplied tag) that ran
            the sweep; empty for library use.
        policies: sorted unique policy labels in the grid.
        workloads: sorted unique workload names.
        machines: sorted unique machine spec strings.
        seeds: count of distinct seeds in the grid.
        cells_total: unique cells served (executed + cached).
        cells_executed: cells actually simulated.
        cells_cached: cells answered from the result cache.
        wall_s: end-to-end sweep wall time.
        cells_per_s: throughput over unique cells.
        backend: execution backend name used for the sweep.
        jobs: worker processes (1 = in-process serial).
        repro_version: simulator package version.
        git_sha: repo HEAD at sweep time ("" outside a checkout).
        host_score: the host calibration score at sweep time
            (:mod:`repro.obs.calibrate`; 0.0 = uncalibrated host).
        phases: per-phase wall-time attribution, ``(phase, seconds)``
            pairs from the sweep's :class:`~repro.obs.profile.PhaseProfile`
            (empty when the sweep was not profiled).
    """

    sweep_id: str
    unix_time: float
    command: str
    policies: Tuple[str, ...]
    workloads: Tuple[str, ...]
    machines: Tuple[str, ...]
    seeds: int
    cells_total: int
    cells_executed: int
    cells_cached: int
    wall_s: float
    cells_per_s: float
    backend: str
    jobs: int
    repro_version: str = repro.__version__
    git_sha: str = ""
    host_score: float = 0.0
    phases: Tuple[Tuple[str, float], ...] = ()

    def to_json(self) -> dict:
        """The record as a JSON-safe dict, version-stamped."""
        payload = asdict(self)
        payload["policies"] = list(self.policies)
        payload["workloads"] = list(self.workloads)
        payload["machines"] = list(self.machines)
        payload["phases"] = {phase: seconds for phase, seconds in self.phases}
        return {"v": FLEET_SCHEMA_VERSION, **payload}

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cells answered from the cache."""
        return self.cells_cached / self.cells_total if self.cells_total else 0.0

    @property
    def normalized_cells_per_s(self) -> Optional[float]:
        """Host-normalized throughput, or None on an uncalibrated host.

        Dividing by the host score expresses throughput in
        reference-host cells/s, so records from a laptop and a CI
        runner land on one comparable axis.
        """
        if self.host_score > 0:
            return self.cells_per_s / self.host_score
        return None

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """The stored phase attribution as a ``{phase: seconds}`` dict."""
        return {phase: seconds for phase, seconds in self.phases}


class FleetLedger:
    """Appends :class:`FleetRecord` lines to the ledger file.

    Mirrors :class:`repro.obs.runlog.RunLogWriter`: lazy open on first
    write (configuring a ledger path never creates an empty file),
    flush per record, idempotent :meth:`close`, context-manager ready.
    """

    def __init__(self, path: Union[str, Path] = DEFAULT_FLEET_PATH):
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        self.written = 0

    def append(self, record: FleetRecord) -> None:
        """Append one sweep record and flush it to disk."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        """Close the underlying file (no-op if never written to)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FleetLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True)
class FleetHistory:
    """A parsed ledger: records plus reader-level provenance warnings."""

    records: Tuple[FleetRecord, ...]
    warnings: Tuple[str, ...] = ()


def read_fleet(path: Union[str, Path]) -> FleetHistory:
    """Parse the fleet ledger, tolerating damaged lines.

    Unlike a run-log (where a bad line voids the cell audit), the fleet
    ledger is operational history — a truncated trailing line from a
    crashed sweep must not make every *earlier* sweep unreadable.  Bad
    lines are skipped and reported in ``warnings``.
    """
    records: List[FleetRecord] = []
    warnings: List[str] = []
    path = Path(path)
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                if not isinstance(raw, dict):
                    raise ValueError("not a JSON object")
                records.append(_from_json(raw))
            except (ValueError, TypeError, KeyError) as exc:
                warnings.append(
                    f"{path}:{lineno}: skipped unreadable fleet record "
                    f"(truncated write?): {exc}"
                )
    return FleetHistory(records=tuple(records), warnings=tuple(warnings))


def _from_json(raw: dict) -> FleetRecord:
    known = {f for f in FleetRecord.__dataclass_fields__}
    kwargs = {k: v for k, v in raw.items() if k in known}
    for axis in ("policies", "workloads", "machines"):
        kwargs[axis] = tuple(kwargs.get(axis, ()))
    # v1 records carry no phases; v2 stores them as an object (and a
    # pair list round-trips too, for hand-edited ledgers).
    phases = kwargs.get("phases", ())
    if isinstance(phases, dict):
        pairs = sorted(phases.items())
    else:
        pairs = [(p, s) for p, s in phases]
    kwargs["phases"] = tuple((str(p), float(s)) for p, s in pairs)
    kwargs["host_score"] = float(kwargs.get("host_score", 0.0) or 0.0)
    return FleetRecord(**kwargs)


def new_sweep_id(unix_time: Optional[float] = None) -> str:
    """A short, human-sortable sweep id: ``20260809T143205-4f21``."""
    if unix_time is None:
        unix_time = time.time()
    stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(unix_time))
    suffix = f"{(os.getpid() * 2654435761 + int(unix_time * 1e6)) & 0xFFFF:04x}"
    return f"{stamp}-{suffix}"


def git_sha(cwd: Union[str, Path, None] = None) -> str:
    """The repo's HEAD sha, or ``""`` when git/repo is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of ``values`` (empty string for no values)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_BARS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_BARS) - 1))
        out.append(_SPARK_BARS[idx])
    return "".join(out)


def throughput_trend(records: Sequence[FleetRecord]) -> str:
    """A one-line throughput trend over the ledger, oldest first.

    ``throughput trend (cells/s): 5.7 → 19.3 (3.39x) ▁▃█`` — only
    sweeps that executed at least one cell count (an all-cached sweep's
    "throughput" measures the cache, not the engine).
    """
    measured = [r for r in sorted(records, key=lambda r: r.unix_time)
                if r.cells_executed > 0 and r.cells_per_s > 0]
    if not measured:
        return "throughput trend: no executed sweeps recorded yet"
    rates = [r.cells_per_s for r in measured]
    first, last = rates[0], rates[-1]
    trend = f"throughput trend (cells/s): {first:.1f} → {last:.1f}"
    if first > 0:
        trend += f" ({last / first:.2f}x)"
    spark = sparkline(rates)
    if len(rates) > 1:
        trend += f" {spark}"
    return trend


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _normalized_rate(record: FleetRecord) -> float:
    """Host-normalized throughput, raw when the host is uncalibrated."""
    normalized = record.normalized_cells_per_s
    return normalized if normalized is not None else record.cells_per_s


def _nominal_phase_per_cell(record: FleetRecord) -> Dict[str, float]:
    """Per-cell phase seconds, scaled to reference-host seconds.

    ``host_wall * score`` is what the nominal host would have spent, so
    phase costs from differently-fast hosts compare directly; an
    uncalibrated record contributes its raw seconds.
    """
    if record.cells_executed <= 0:
        return {}
    scale = record.host_score if record.host_score > 0 else 1.0
    return {
        phase: seconds * scale / record.cells_executed
        for phase, seconds in record.phases
    }


@dataclass(frozen=True)
class SentinelReport:
    """The outcome of one :func:`check_fleet` regression check.

    ``checked`` distinguishes "looked and found nothing to compare"
    (ok, but vacuously) from a real verdict; ``ok`` is the pass/fail
    the CLI turns into an exit code.
    """

    checked: bool
    ok: bool
    reason: str
    latest: Optional[FleetRecord] = None
    window: int = 0
    baseline_cells_per_s: Optional[float] = None
    latest_cells_per_s: Optional[float] = None
    drop_pct: Optional[float] = None
    baseline_hit_rate: Optional[float] = None
    latest_hit_rate: Optional[float] = None
    culprit_phase: Optional[str] = None

    def summary(self) -> str:
        """The one-line verdict ``repro fleet --check`` prints."""
        verdict = "ok" if self.ok else "REGRESSION"
        if not self.checked:
            return f"fleet sentinel: {verdict} (unchecked: {self.reason})"
        return f"fleet sentinel: {verdict} — {self.reason}"


def check_fleet(
    records: Sequence[FleetRecord],
    window: int = 5,
    max_drop_pct: float = 25.0,
    max_hit_rate_drop: float = 0.5,
) -> SentinelReport:
    """Check the newest executed sweep against its robust baseline.

    The baseline is the median of the last ``window`` *comparable*
    earlier records — same machine-axis set, same backend, at least one
    executed cell — each normalized by its own host score (so a slower
    CI runner is not misread as a code regression).  The check fails
    when normalized throughput drops more than ``max_drop_pct`` percent
    below baseline, or the cache-hit rate falls more than
    ``max_hit_rate_drop`` (absolute fraction) below the baseline median
    — a sweep that silently stopped reusing its cache.  On a throughput
    regression the per-phase attribution names the culprit: the phase
    whose nominal per-cell cost grew the most over baseline.

    With no executed sweep, or no comparable history, the report is
    ``ok`` but ``checked=False`` — a fresh ledger must not fail CI.
    """
    ordered = sorted(records, key=lambda r: r.unix_time)
    executed = [
        r for r in ordered if r.cells_executed > 0 and r.cells_per_s > 0
    ]
    if not executed:
        return SentinelReport(
            checked=False, ok=True,
            reason="no executed sweeps in the ledger",
        )
    latest = executed[-1]
    comparable = [
        r for r in executed[:-1]
        if r.machines == latest.machines and r.backend == latest.backend
    ]
    baseline = comparable[-window:] if window > 0 else comparable
    if not baseline:
        return SentinelReport(
            checked=False, ok=True,
            reason=(
                f"no comparable baseline for {latest.sweep_id} "
                f"(machines={'/'.join(latest.machines) or '-'}, "
                f"backend={latest.backend or '-'})"
            ),
            latest=latest,
        )

    base_rate = _median([_normalized_rate(r) for r in baseline])
    latest_rate = _normalized_rate(latest)
    drop_pct = (
        (base_rate - latest_rate) / base_rate * 100.0 if base_rate > 0 else 0.0
    )
    base_hit = _median([r.cache_hit_rate for r in baseline])
    latest_hit = latest.cache_hit_rate
    hit_drop = base_hit - latest_hit

    failures = []
    culprit: Optional[str] = None
    if drop_pct > max_drop_pct:
        latest_phases = _nominal_phase_per_cell(latest)
        base_by_phase: Dict[str, List[float]] = {}
        for r in baseline:
            for phase, per_cell in _nominal_phase_per_cell(r).items():
                base_by_phase.setdefault(phase, []).append(per_cell)
        growth = {
            phase: per_cell - _median(base_by_phase.get(phase, [0.0]))
            for phase, per_cell in latest_phases.items()
        }
        if growth:
            worst, worst_growth = max(growth.items(), key=lambda kv: kv[1])
            if worst_growth > 0:
                culprit = worst
        blame = (
            f"; culprit phase: {culprit} "
            f"(+{growth[culprit] * 1e3:.1f} ms/cell over baseline)"
            if culprit is not None
            else "; no phase attribution recorded"
        )
        failures.append(
            f"throughput dropped {drop_pct:.0f}% below baseline "
            f"({latest_rate:.1f} vs {base_rate:.1f} normalized cells/s, "
            f"bar {max_drop_pct:g}%){blame}"
        )
    if hit_drop > max_hit_rate_drop:
        failures.append(
            f"cache-hit rate collapsed ({latest_hit:.0%} vs baseline "
            f"{base_hit:.0%}, bar -{max_hit_rate_drop:.0%})"
        )

    if failures:
        reason = "; ".join(failures)
        ok = False
    else:
        reason = (
            f"{latest.sweep_id}: {latest_rate:.1f} normalized cells/s vs "
            f"baseline {base_rate:.1f} (median of {len(baseline)}), "
            f"cache-hit {latest_hit:.0%} vs {base_hit:.0%}"
        )
        ok = True
    return SentinelReport(
        checked=True,
        ok=ok,
        reason=reason,
        latest=latest,
        window=len(baseline),
        baseline_cells_per_s=base_rate,
        latest_cells_per_s=latest_rate,
        drop_pct=drop_pct,
        baseline_hit_rate=base_hit,
        latest_hit_rate=latest_hit,
        culprit_phase=culprit,
    )
