"""Kernel event tracing: the software analogue of the paper's DAQ capture.

The paper's key evidence is time-domain: the DAQ's 5 kHz power samples and
the kernel's scheduler activity log, lined up on one time axis, are what
make AVG_N's oscillation (Fig. 7) and PAST's fast settling visible.
:class:`TraceRecorder` reproduces that instrument inside the simulator —
it subscribes to every kernel observer hook (power segments, quanta,
scheduler decisions, frequency/voltage changes) and keeps them as an
ordered event buffer — and :meth:`TraceRecorder.chrome_trace` exports the
buffer as Chrome trace-event JSON, so any run opens in Perfetto or
``chrome://tracing`` with:

- counter tracks for clock frequency, core voltage, and power;
- one slice track per process showing exactly when it ran;
- a DVFS track with the ~200 us clock-change stalls and rail-sag windows;
- instant markers for every deadline miss.

Like every recorder, the tracer is a pure observer: attaching it cannot
change a run's numbers (the determinism tests pin this bitwise), and runs
without it pay nothing because the kernel only wires up overridden hooks.

The exporter emits the subset of the Trace Event Format that Perfetto
renders: metadata (``M``), complete (``X``), counter (``C``) and instant
(``i``) events.  :func:`validate_chrome_trace` structurally checks a
payload against that subset; the CI trace smoke job and the schema tests
both go through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro.kernel.recorders import RunRecorder
from repro.traces.schema import (
    AppEvent,
    FreqChange,
    QuantumRecord,
    SchedDecision,
    VoltChange,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.scheduler import KernelRun

#: The synthetic "process" ids the exported trace groups its tracks under.
#: (Trace-event pids are display containers, not simulated pids.)
TRACE_PID_MACHINE = 1
TRACE_PID_PROCESSES = 2

#: Event phases the exporter emits (and the validator accepts).
_PHASES = {"M", "X", "C", "i", "I"}


class TraceRecorder(RunRecorder):
    """Captures every kernel observation into an ordered event buffer.

    The hooks are append-only: quanta and DVFS changes go straight into
    lists via bound ``list.append``, and scheduler decisions are buffered
    as plain tuples (the kernel hands them over as scalars).  No per-event
    dicts — Chrome trace events are built only at export time, so an
    enabled tracer costs the hot loop little more than the appends.  Power
    is not captured live at all: the tracer mirrors the run's merged
    :class:`~repro.traces.schema.PowerTimeline` at :meth:`contribute`
    (full recording keeps that timeline anyway, so buffering a second,
    unmerged copy per segment would only slow the hot loop down).

    Attributes:
        power: ``(start_us, end_us, watts)`` power segments, mirrored from
            the run's merged timeline at run end (empty under minimal
            recording, which keeps no timeline).
        quanta: per-quantum utilization records; a lazily-materializing
            view (a replaying backend hands the stream over as raw rows,
            which only become :class:`QuantumRecord` objects on first
            read).
        decisions: scheduler activity log entries (always captured here,
            independent of ``KernelConfig.record_sched_log``); a
            materializing view over the internal tuple buffer.
        freq_changes / volt_changes: the DVFS transition history.
    """

    def __init__(self) -> None:
        self.power: List[Tuple[float, float, float]] = []
        self._quanta_records: List[QuantumRecord] = []
        self._quanta_rows: Optional[Tuple[List[tuple], float]] = None
        self._decision_rows: List[tuple] = []
        self.freq_changes: List[FreqChange] = []
        self.volt_changes: List[VoltChange] = []
        self._run: Optional["KernelRun"] = None
        # Rebind the single-argument hooks to C-level list appends and the
        # scheduler hook to a closure over the buffer's append; the kernel
        # dispatches instance attributes, so these win over the methods.
        self.on_quantum = self._quanta_records.append
        self.on_freq_change = self.freq_changes.append
        self.on_volt_change = self.volt_changes.append

        def on_sched(time_us, pid, name, mhz,
                     _append=self._decision_rows.append):
            _append((time_us, pid, name, mhz))

        self.on_sched_decision = on_sched

    # -- observer hooks ---------------------------------------------------------

    def on_quantum(self, record: QuantumRecord) -> None:
        self.quanta.append(record)

    def on_sched_decision(
        self, time_us: float, pid: int, name: str, mhz: float
    ) -> None:
        self._decision_rows.append((time_us, pid, name, mhz))

    def on_freq_change(self, change: FreqChange) -> None:
        self.freq_changes.append(change)

    def on_volt_change(self, change: VoltChange) -> None:
        self.volt_changes.append(change)

    def replay_quantum_rows(self, rows: List[tuple], quantum_us: float) -> None:
        # Bulk form: keep the shared row buffer and defer QuantumRecord
        # construction to the first `quanta` read (exports need records;
        # most runs never look).
        self._quanta_rows = (rows, quantum_us)

    def replay_sched_rows(self, rows: List[tuple]) -> None:
        # The backend's rows are already this buffer's tuple layout.
        self._decision_rows.extend(rows)

    def contribute(self, run: "KernelRun") -> None:
        self._run = run
        self.power = list(run.timeline)
        run.trace = self

    @property
    def quanta(self) -> List[QuantumRecord]:
        """Per-quantum utilization records (materialized on first read)."""
        pending = self._quanta_rows
        if pending is not None:
            rows, q = pending
            # Same construction as the run's own materialization — the
            # records compare (bitwise-)equal to live on_quantum capture.
            self._quanta_records = [
                QuantumRecord(
                    end_us=t,
                    busy_us=b,
                    quantum_us=q,
                    step_index=si,
                    mhz=m,
                    volts=v,
                )
                for (t, b, _u, si, m, v) in rows
            ]
            self._quanta_rows = None
        return self._quanta_records

    @property
    def decisions(self) -> List[SchedDecision]:
        """The scheduler activity log as :class:`SchedDecision` objects."""
        return [SchedDecision(*row) for row in self._decision_rows]

    # -- derived windows --------------------------------------------------------

    def stall_windows(self) -> List[Tuple[float, float]]:
        """``(start_us, end_us)`` spans the CPU stalled for clock switches.

        The DVFS engine stamps a :class:`FreqChange` *after* the stall it
        charged, so each window ends at the change time.
        """
        return [
            (c.time_us - c.stall_us, c.time_us)
            for c in self.freq_changes
            if c.stall_us > 0
        ]

    def sag_windows(self) -> List[Tuple[float, float]]:
        """``(start_us, end_us)`` spans the rail sagged after voltage drops.

        Execution continues during a sag, but power is still drawn at the
        old (higher) voltage — exactly the window the paper's DAQ sees.
        """
        return [
            (c.time_us, c.time_us + c.settle_us)
            for c in self.volt_changes
            if c.to_volts < c.from_volts and c.settle_us > 0
        ]

    # -- export -----------------------------------------------------------------

    def chrome_trace(
        self,
        run: Optional["KernelRun"] = None,
        tolerance_us: float = 0.0,
    ) -> dict:
        """The captured run as a Chrome trace-event JSON payload.

        Args:
            run: the finished kernel run, for process names and deadline
                events.  Defaults to the run this recorder contributed to.
            tolerance_us: per-workload perceptibility tolerance; events
                later than their deadline by more than this become
                ``deadline miss`` instants.

        Returns:
            A dict with ``traceEvents`` (ts/dur in microseconds, the
            format's native unit) ready for ``json.dump`` and Perfetto.
        """
        run = run if run is not None else self._run
        events: List[dict] = [
            _meta(TRACE_PID_MACHINE, None, "process_name", "machine"),
            _meta(TRACE_PID_MACHINE, 1, "thread_name", "frequency (MHz)"),
            _meta(TRACE_PID_MACHINE, 2, "thread_name", "voltage (V)"),
            _meta(TRACE_PID_MACHINE, 3, "thread_name", "power (W)"),
            _meta(TRACE_PID_MACHINE, 4, "thread_name", "dvfs"),
            _meta(TRACE_PID_PROCESSES, None, "process_name", "processes"),
        ]

        # Counter tracks.  One sample per quantum gives Perfetto a stepped
        # line at the same 10 ms granularity the governor observes; the
        # power track follows the merged segment boundaries (the exact
        # signal the DAQ samples).
        for q in self.quanta:
            events.append(_counter("frequency (MHz)", q.start_us, {"mhz": q.mhz}))
            events.append(_counter("voltage (V)", q.start_us, {"volts": q.volts}))
        for start_us, _end_us, watts in self.power:
            events.append(_counter("power (W)", start_us, {"watts": watts}))

        # Per-process execution slices from the scheduler activity log:
        # each decision runs until the next one (or the end of the run).
        end_us = self._end_us(run)
        names = dict(run.process_names) if run is not None else {}
        seen_tids = {}
        decisions = self.decisions
        for i, d in enumerate(decisions):
            nxt = decisions[i + 1].time_us if i + 1 < len(decisions) else end_us
            dur = max(0.0, nxt - d.time_us)
            if d.pid not in seen_tids:
                seen_tids[d.pid] = True
                label = names.get(d.pid, d.name)
                events.append(
                    _meta(TRACE_PID_PROCESSES, d.pid, "thread_name",
                          f"{label} (pid {d.pid})")
                )
            events.append({
                "name": d.name,
                "ph": "X",
                "ts": d.time_us,
                "dur": dur,
                "pid": TRACE_PID_PROCESSES,
                "tid": d.pid,
                "args": {"mhz": d.mhz},
            })

        # The DVFS track: transition instants plus their cost windows.
        for c in self.freq_changes:
            events.append({
                "name": f"clock {c.from_mhz:.1f}->{c.to_mhz:.1f} MHz",
                "ph": "i", "s": "g",
                "ts": c.time_us,
                "pid": TRACE_PID_MACHINE, "tid": 4,
                "args": {"from_mhz": c.from_mhz, "to_mhz": c.to_mhz,
                         "stall_us": c.stall_us},
            })
        for c in self.volt_changes:
            events.append({
                "name": f"rail {c.from_volts:.2f}->{c.to_volts:.2f} V",
                "ph": "i", "s": "g",
                "ts": c.time_us,
                "pid": TRACE_PID_MACHINE, "tid": 4,
                "args": {"from_volts": c.from_volts, "to_volts": c.to_volts,
                         "settle_us": c.settle_us},
            })
        for start_us, stop_us in self.stall_windows():
            events.append({
                "name": "clock-change stall",
                "ph": "X",
                "ts": start_us,
                "dur": stop_us - start_us,
                "pid": TRACE_PID_MACHINE, "tid": 4,
                "args": {},
            })
        for start_us, stop_us in self.sag_windows():
            events.append({
                "name": "rail sag",
                "ph": "X",
                "ts": start_us,
                "dur": stop_us - start_us,
                "pid": TRACE_PID_MACHINE, "tid": 4,
                "args": {},
            })

        # Deadline misses as global instants, one per offending event.
        if run is not None:
            for miss in run.deadline_misses(tolerance_us=tolerance_us):
                events.append(_miss_event(miss))

        events.sort(key=_sort_key)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.trace",
                "quanta": len(self.quanta),
                "power_segments": len(self.power),
                "sched_decisions": len(self._decision_rows),
                "freq_changes": len(self.freq_changes),
                "volt_changes": len(self.volt_changes),
            },
        }

    def _end_us(self, run: Optional["KernelRun"]) -> float:
        if run is not None:
            return run.duration_us
        if self.power:
            return self.power[-1][1]
        if self.quanta:
            return self.quanta[-1].end_us
        return 0.0


def _meta(pid: int, tid: Optional[int], name: str, value: str) -> dict:
    event = {"name": name, "ph": "M", "pid": pid, "args": {"name": value}}
    if tid is not None:
        event["tid"] = tid
    return event


def _counter(name: str, ts_us: float, args: dict) -> dict:
    return {"name": name, "ph": "C", "ts": ts_us, "pid": TRACE_PID_MACHINE,
            "args": args}


def _miss_event(miss: AppEvent) -> dict:
    return {
        "name": f"deadline miss: {miss.kind}",
        "ph": "i", "s": "g",
        "ts": miss.time_us,
        "pid": TRACE_PID_PROCESSES, "tid": miss.pid,
        "args": {"lateness_us": miss.lateness_us, "kind": miss.kind},
    }


def _sort_key(event: dict) -> Tuple[int, float]:
    # Metadata first, then chronological; stable for equal timestamps.
    return (0 if event["ph"] == "M" else 1, event.get("ts", 0.0))


def write_chrome_trace(payload: dict, path: Union[str, Path]) -> Path:
    """Validate ``payload`` and write it to ``path`` as JSON.

    Raises:
        ValueError: if the payload fails :func:`validate_chrome_trace`.
    """
    validate_chrome_trace(payload)
    out = Path(path)
    out.write_text(json.dumps(payload) + "\n")
    return out


def validate_chrome_trace(payload: object) -> None:
    """Structurally validate a Chrome trace-event JSON payload.

    Checks the contract Perfetto / ``chrome://tracing`` rely on for the
    event kinds this exporter emits: a ``traceEvents`` list whose entries
    carry a name, a known phase, a pid, finite non-negative timestamps,
    and non-negative durations on complete events.

    Raises:
        ValueError: describing the first violation found.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload needs a 'traceEvents' list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} needs a non-empty 'name'")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"{where} has unknown phase {phase!r}")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"{where} needs an integer 'pid'")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
                raise ValueError(f"{where} needs a finite 'ts' >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                raise ValueError(f"{where} needs a finite 'dur' >= 0")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"{where} counter needs non-empty 'args'")
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"{where} counter arg {key!r} is not numeric"
                    )
