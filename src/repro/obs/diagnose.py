"""Per-run policy diagnostics: explain every joule and every missed deadline.

The paper's headline result is diagnostic, not numeric: every
implementable policy either misses deadlines or saves almost no energy,
because AVG_N is a low-pass filter that attenuates but never eliminates
oscillation (Figures 5-7).  The raw observability layer records *what*
happened; this module computes *why*, as one frozen
:class:`PolicyDiagnosis` per run:

- :class:`SettlingReport` — did the clock-step signal settle, and if not,
  at what amplitude and dominant period does it oscillate?  Ties the
  measured spectrum back to the predictor's analytic frequency response
  (:mod:`repro.analysis.fourier`), quantifying "AVG_N cannot settle" as a
  measurable artifact.
- :class:`PredictionLedger` — per-interval prediction error: the weighted
  utilization the predictor carried into each interval versus the
  utilization that interval actually delivered.
- :class:`MissAttribution` — each deadline miss mapped back to the speed
  decisions in its preceding window, and classified as a *policy* miss
  (the window ran below full speed, so a better decision existed) or a
  *capacity* miss (even flat-out the machine was too slow).
- :class:`EnergyDecomposition` — measured energy split against the
  ideal-constant oracle baseline into overshoot, clock-change stall, and
  rail-sag components that sum back to the measured total exactly.

Everything here is a pure, frozen function of an already-finished run:
diagnosing can never change a result, and every dataclass pickles (for
pool transport) and round-trips through JSON (for diagnosis logs).
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    IO, TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union,
)

import numpy as np

from repro.analysis.fourier import alpha_for_avg_n, fourier_magnitude
from repro.analysis.oscillation import oscillation_stats
from repro.core.catalog import predictor_decay_n
from repro.hw.machine import Machine
from repro.hw.power import CoreState
from repro.kernel.scheduler import KernelRun

if TYPE_CHECKING:  # import cycle: repro.measure.parallel imports this module
    from repro.measure.runner import ExperimentResult

#: JSONL schema version for serialized diagnoses; bump on field changes.
DIAGNOSIS_VERSION = 1

#: A run "settled" when its steady-state tail averages at most this many
#: clock-step changes per quantum.  The paper's best policy (PAST/peg
#: 98/93) sits well below this on the interactive workloads; AVG_N on
#: mpeg sits an order of magnitude above it (it re-decides roughly every
#: eighth quantum, forever).
SETTLE_CHURN_PER_QUANTUM = 0.02

#: How far back a deadline miss looks for the speed decisions that caused
#: it.  Half a second spans ~50 quanta: enough to cover the ramp-up lag of
#: the largest AVG_N the paper sweeps.
ATTRIBUTION_WINDOW_US = 500_000.0

#: Energy components must reconstruct the measured total at least this
#: tightly (the property tests pin it).
ENERGY_SUM_TOLERANCE_J = 1e-9


# ---------------------------------------------------------------------------
# settling / oscillation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SettlingReport:
    """Does the clock-step signal settle, and how does it oscillate if not?

    All statistics are over the steady-state *tail* (the second half) of
    the per-quantum clock-step series, so start-up transients do not count
    against a policy that does converge.

    Attributes:
        settled: True when tail churn is at most
            :data:`SETTLE_CHURN_PER_QUANTUM`.
        churn_per_quantum: clock-step changes per tail quantum.
        tail_quanta: number of quanta in the analysed tail.
        changes_in_tail: clock-step changes within the tail.
        last_change_us: time of the final clock change of the whole run
            (None if the clock never changed).
        amplitude_steps / amplitude_mhz: oscillation band width of the
            tail, in table steps and in MHz.
        mean_mhz: average tail clock frequency.
        crossings_per_quantum: how often the tail MHz series crosses its
            own mean (0 for a settled run).
        dominant_period_quanta: period of the strongest oscillation
            component of the mean-removed tail step signal (None when the
            tail is constant).
        dominant_power_fraction: fraction of the tail signal's AC power in
            that component (0 when the tail is constant).
        predictor_alpha: the continuous decay rate matching the policy's
            AVG_N predictor (None when the policy has no AVG_N predictor
            or N = 0, where the idealization degenerates).
        attenuation_at_dominant: the predictor's normalized frequency
            response ``|X(w)|/|X(0)|`` at the dominant oscillation
            frequency — strictly positive, which is the paper's point:
            the filter attenuates but never eliminates the oscillation.
    """

    settled: bool
    churn_per_quantum: float
    tail_quanta: int
    changes_in_tail: int
    last_change_us: Optional[float]
    amplitude_steps: int
    amplitude_mhz: float
    mean_mhz: float
    crossings_per_quantum: float
    dominant_period_quanta: Optional[float]
    dominant_power_fraction: float
    predictor_alpha: Optional[float]
    attenuation_at_dominant: Optional[float]


def settling_report(
    run: KernelRun, decay_n: Optional[int] = None
) -> SettlingReport:
    """Analyse the settling behaviour of a full-recording run.

    Args:
        run: a kernel run recorded with the full recorder set (needs the
            per-quantum log).
        decay_n: the policy's AVG_N decay length (see
            :func:`repro.core.catalog.predictor_decay_n`), for the
            frequency-response tie-in; None skips it.

    Raises:
        ValueError: if the run has no per-quantum log.
    """
    if not run.quanta:
        raise ValueError("settling analysis needs a full-recording run")
    steps = np.asarray([q.step_index for q in run.quanta], dtype=float)
    mhz = np.asarray([q.mhz for q in run.quanta], dtype=float)
    tail_start = steps.size // 2
    tail = steps[tail_start:]
    tail_mhz = mhz[tail_start:]
    changes_in_tail = int(np.sum(tail[1:] != tail[:-1]))
    churn = changes_in_tail / max(1, tail.size - 1)

    all_change_idx = np.flatnonzero(steps[1:] != steps[:-1])
    last_change_us: Optional[float] = None
    if all_change_idx.size:
        # The change took effect in quantum i+1; stamp its start.
        last_change_us = run.quanta[int(all_change_idx[-1]) + 1].start_us

    osc = oscillation_stats(mhz, settle_fraction=0.5)

    dominant_period: Optional[float] = None
    dominant_fraction = 0.0
    ac = tail - tail.mean()
    if tail.size >= 4 and np.any(ac != 0.0):
        spectrum = np.abs(np.fft.rfft(ac)) ** 2
        spectrum[0] = 0.0  # mean already removed; guard residue
        peak = int(np.argmax(spectrum))
        total = float(np.sum(spectrum))
        if peak >= 1 and total > 0.0:
            dominant_period = tail.size / peak
            dominant_fraction = float(spectrum[peak] / total)

    alpha: Optional[float] = None
    attenuation: Optional[float] = None
    if decay_n is not None and decay_n >= 1:
        interval_s = run.quanta[0].quantum_us * 1e-6
        alpha = alpha_for_avg_n(decay_n, interval_s=interval_s)
        if dominant_period is not None:
            omega = 2.0 * np.pi / (dominant_period * interval_s)
            attenuation = float(fourier_magnitude(omega, alpha) * alpha)

    return SettlingReport(
        settled=churn <= SETTLE_CHURN_PER_QUANTUM,
        churn_per_quantum=churn,
        tail_quanta=int(tail.size),
        changes_in_tail=changes_in_tail,
        last_change_us=last_change_us,
        amplitude_steps=int(tail.max() - tail.min()),
        amplitude_mhz=float(tail_mhz.max() - tail_mhz.min()),
        mean_mhz=float(tail_mhz.mean()),
        crossings_per_quantum=osc.crossings_per_step,
        dominant_period_quanta=dominant_period,
        dominant_power_fraction=dominant_fraction,
        predictor_alpha=alpha,
        attenuation_at_dominant=attenuation,
    )


# ---------------------------------------------------------------------------
# prediction-error ledger
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictionLedger:
    """Summary of the per-interval prediction error of an AVG_N predictor.

    For each interval the predictor carries a weighted utilization ``W``
    into the next interval as its prediction; the error is the realized
    utilization minus that prediction.  Positive bias means the predictor
    ran behind demand (under-prediction -> late speed-ups); negative
    means it over-predicted (wasted speed).

    Attributes:
        decay_n: the AVG_N decay length the ledger was computed with.
        count: number of predicted intervals (quanta - 1).
        mean_error: signed bias of the prediction.
        mean_abs_error / rms_error / max_abs_error: error magnitudes.
        worst: the ``(end_us, predicted, realized)`` triples of the
            largest-error intervals, worst first (at most five).
    """

    decay_n: int
    count: int
    mean_error: float
    mean_abs_error: float
    rms_error: float
    max_abs_error: float
    worst: Tuple[Tuple[float, float, float], ...]


def prediction_errors(
    utilizations: Sequence[float], decay_n: int
) -> List[Tuple[float, float]]:
    """Replay AVG_N over a utilization series.

    Returns one ``(predicted, realized)`` pair per predicted interval:
    entry ``t`` predicts interval ``t+1`` from intervals ``0..t`` using
    the same recurrence the live predictor runs
    (``W' = (N * W + u) / (N + 1)``, ``W`` starting at zero; ``N = 0``
    is PAST).

    Raises:
        ValueError: for a negative ``decay_n``.
    """
    if decay_n < 0:
        raise ValueError("decay_n must be non-negative")
    pairs: List[Tuple[float, float]] = []
    weighted = 0.0
    for i, u in enumerate(utilizations):
        weighted = (decay_n * weighted + u) / (decay_n + 1)
        if i + 1 < len(utilizations):
            pairs.append((weighted, utilizations[i + 1]))
    return pairs


def prediction_ledger(
    run: KernelRun, decay_n: Optional[int]
) -> Optional[PredictionLedger]:
    """The prediction-error summary of a run, or None.

    None when the policy has no AVG_N predictor (``decay_n`` None) or the
    run is too short to predict anything.
    """
    if decay_n is None or len(run.quanta) < 2:
        return None
    pairs = prediction_errors(run.utilizations(), decay_n)
    errors = [realized - predicted for predicted, realized in pairs]
    arr = np.asarray(errors, dtype=float)
    order = np.argsort(-np.abs(arr))[:5]
    worst = tuple(
        (run.quanta[int(i) + 1].end_us, pairs[int(i)][0], pairs[int(i)][1])
        for i in order
    )
    return PredictionLedger(
        decay_n=decay_n,
        count=len(errors),
        mean_error=float(arr.mean()),
        mean_abs_error=float(np.abs(arr).mean()),
        rms_error=float(np.sqrt(np.mean(arr**2))),
        max_abs_error=float(np.abs(arr).max()),
        worst=worst,
    )


# ---------------------------------------------------------------------------
# deadline-miss attribution
# ---------------------------------------------------------------------------

#: Miss causes.
CAUSE_POLICY = "policy"
CAUSE_CAPACITY = "capacity"


@dataclass(frozen=True)
class MissAttribution:
    """One deadline miss mapped back to its preceding speed decisions.

    Attributes:
        kind / pid / time_us / deadline_us / lateness_us: the missed
            event, as recorded by the workload.
        window_start_us: start of the attribution window (the
            :data:`ATTRIBUTION_WINDOW_US` before the deadline).
        mean_mhz / min_mhz / max_mhz: clock statistics over the window.
        up_changes / down_changes: clock changes applied in the window.
        cause: :data:`CAUSE_POLICY` when any window quantum ran below the
            machine's top step (a faster decision existed), else
            :data:`CAUSE_CAPACITY` (flat-out was still too slow).
    """

    kind: str
    pid: int
    time_us: float
    deadline_us: float
    lateness_us: float
    window_start_us: float
    mean_mhz: float
    min_mhz: float
    max_mhz: float
    up_changes: int
    down_changes: int
    cause: str


def attribute_misses(
    run: KernelRun,
    tolerance_us: float = 0.0,
    max_step_index: Optional[int] = None,
) -> List[MissAttribution]:
    """Map each perceptible deadline miss to its preceding speed window.

    Args:
        run: a full-recording kernel run.
        tolerance_us: the workload's perceptibility tolerance.
        max_step_index: the machine's top clock step (None: the largest
            step index seen anywhere in the run).

    Raises:
        ValueError: if the run misses deadlines but has no quantum log to
            attribute them against.
    """
    misses = run.deadline_misses(tolerance_us=tolerance_us)
    if not misses:
        return []
    if not run.quanta:
        raise ValueError("miss attribution needs a full-recording run")
    if max_step_index is None:
        max_step_index = max(q.step_index for q in run.quanta)
    ends = [q.end_us for q in run.quanta]
    out: List[MissAttribution] = []
    for miss in misses:
        deadline = miss.deadline_us if miss.deadline_us is not None else miss.time_us
        start = max(0.0, deadline - ATTRIBUTION_WINDOW_US)
        lo = bisect_right(ends, start)
        hi = bisect_right(ends, deadline)
        window = run.quanta[lo : max(hi + 1, lo + 1)]
        if not window:
            window = run.quanta[-1:]
        mhz = [q.mhz for q in window]
        below_max = any(q.step_index < max_step_index for q in window)
        ups = sum(
            1
            for c in run.freq_changes
            if start <= c.time_us <= deadline and c.to_mhz > c.from_mhz
        )
        downs = sum(
            1
            for c in run.freq_changes
            if start <= c.time_us <= deadline and c.to_mhz < c.from_mhz
        )
        out.append(
            MissAttribution(
                kind=miss.kind,
                pid=miss.pid,
                time_us=miss.time_us,
                deadline_us=deadline,
                lateness_us=miss.lateness_us,
                window_start_us=start,
                mean_mhz=sum(mhz) / len(mhz),
                min_mhz=min(mhz),
                max_mhz=max(mhz),
                up_changes=ups,
                down_changes=downs,
                cause=CAUSE_POLICY if below_max else CAUSE_CAPACITY,
            )
        )
    return out


# ---------------------------------------------------------------------------
# excess-energy decomposition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnergyDecomposition:
    """Measured energy split against the ideal-constant oracle baseline.

    The identity the decomposition maintains (and the property tests pin
    to within :data:`ENERGY_SUM_TOLERANCE_J`)::

        measured_j == baseline_j + overshoot_j + stall_j + sag_j

    Attributes:
        measured_j: the run's exact analytic energy.
        baseline_j: energy of the cheapest *feasible* constant step for
            the same workload (the paper's oracle), or 0.0 when no
            constant step meets the deadlines.
        baseline_feasible: whether such a baseline exists.
        overshoot_j: energy attributable to running a different (usually
            faster) schedule than the oracle, net of transition costs.
            Signed: a policy that undershoots the oracle *and* misses
            deadlines can come out negative.
        stall_j: energy drawn during clock-change stall windows, where
            the CPU burns time without executing.
        sag_j: extra energy drawn during rail-sag windows after voltage
            drops, versus the same execution at the settled voltage.
    """

    measured_j: float
    baseline_j: float
    baseline_feasible: bool
    overshoot_j: float
    stall_j: float
    sag_j: float

    @property
    def excess_j(self) -> float:
        """Energy above the oracle baseline."""
        return self.measured_j - self.baseline_j

    def components_sum_j(self) -> float:
        """The reconstruction ``baseline + overshoot + stall + sag``."""
        return self.baseline_j + self.overshoot_j + self.stall_j + self.sag_j


def _stall_windows(run: KernelRun) -> List[Tuple[float, float]]:
    # The DVFS engine stamps a FreqChange *after* the stall it charged.
    return [
        (c.time_us - c.stall_us, c.time_us)
        for c in run.freq_changes
        if c.stall_us > 0
    ]


def _window_energy_j(
    segments: Sequence[Tuple[float, float, float]],
    windows: Sequence[Tuple[float, float]],
) -> float:
    """Integral of a piecewise-constant power signal over sorted windows."""
    total = 0.0
    i = 0
    n = len(segments)
    for window_start, window_end in windows:
        while i < n and segments[i][1] <= window_start:
            i += 1
        j = i
        while j < n and segments[j][0] < window_end:
            seg_start, seg_end, watts = segments[j]
            overlap = min(seg_end, window_end) - max(seg_start, window_start)
            if overlap > 0:
                total += watts * overlap * 1e-6
            j += 1
    return total


def _sag_excess_j(run: KernelRun, machine: Machine) -> float:
    """Extra energy of rail-sag windows vs the settled voltage.

    During a sag the kernel records power at the *old* voltage; the
    counterfactual replays the same execution states at the new voltage.
    Core state is inferred by matching each recorded segment's watts
    against the power model at the sagged rail — exact float equality,
    because the kernel computed those watts from the same model with the
    same arguments.  Unmatched segments contribute nothing (their energy
    stays in the overshoot residual).
    """
    sags = [
        (c.time_us, c.time_us + c.settle_us, c.from_volts, c.to_volts)
        for c in run.volt_changes
        if c.to_volts < c.from_volts and c.settle_us > 0
    ]
    if not sags:
        return 0.0
    segments = list(run.timeline)
    ends = [q.end_us for q in run.quanta]
    table = machine.clock_table
    total = 0.0
    i = 0
    n = len(segments)
    for window_start, window_end, from_volts, to_volts in sags:
        # The sag starts inside the quantum whose tick applied the drop;
        # that quantum already carries the post-change step.
        qi = min(bisect_right(ends, window_start), len(run.quanta) - 1)
        step = table[run.quanta[qi].step_index]
        active_w = machine.power.total_w(step, from_volts, CoreState.ACTIVE)
        nap_w = machine.power.total_w(step, from_volts, CoreState.NAP)
        while i < n and segments[i][1] <= window_start:
            i += 1
        j = i
        while j < n and segments[j][0] < window_end:
            seg_start, seg_end, watts = segments[j]
            overlap = min(seg_end, window_end) - max(seg_start, window_start)
            if overlap > 0:
                if watts == active_w:
                    settled = machine.power.total_w(
                        step, to_volts, CoreState.ACTIVE
                    )
                elif watts == nap_w:
                    settled = machine.power.total_w(
                        step, to_volts, CoreState.NAP
                    )
                else:
                    settled = watts
                total += (watts - settled) * overlap * 1e-6
            j += 1
    return total


def energy_decomposition(
    run: KernelRun,
    machine: Machine,
    baseline_j: Optional[float],
) -> EnergyDecomposition:
    """Decompose a run's measured energy against the oracle baseline.

    Args:
        run: a full-recording kernel run (needs the power timeline).
        machine: the machine the run executed on (for the power model the
            sag counterfactual replays).
        baseline_j: exact energy of the ideal feasible constant step, or
            None when no constant step meets the deadlines.

    Raises:
        ValueError: if the run has no power timeline.
    """
    if len(run.timeline) == 0:
        raise ValueError("energy decomposition needs a full-recording run")
    measured = run.energy_joules()
    segments = list(run.timeline)
    stall = _window_energy_j(segments, _stall_windows(run))
    sag = _sag_excess_j(run, machine)
    feasible = baseline_j is not None
    base = baseline_j if feasible else 0.0
    # The residual closes the identity exactly: whatever the windows did
    # not claim is schedule overshoot relative to the oracle.
    overshoot = measured - base - stall - sag
    return EnergyDecomposition(
        measured_j=measured,
        baseline_j=base,
        baseline_feasible=feasible,
        overshoot_j=overshoot,
        stall_j=stall,
        sag_j=sag,
    )


# ---------------------------------------------------------------------------
# the full diagnosis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyDiagnosis:
    """Everything the diagnostics engine can say about one run.

    Attributes:
        policy / workload / machine / seed: the experiment cell.
        duration_us: simulated duration.
        quanta: number of scheduling quanta.
        mean_utilization: average per-quantum utilization.
        misses: perceptible deadline misses.
        settling: the clock-step settling/oscillation analysis.
        ledger: prediction-error summary (None for policies without an
            AVG_N predictor).
        miss_attributions: one entry per perceptible miss.
        energy: the excess-energy decomposition.
    """

    policy: str
    workload: str
    machine: str
    seed: int
    duration_us: float
    quanta: int
    mean_utilization: float
    misses: int
    settling: SettlingReport
    ledger: Optional[PredictionLedger]
    miss_attributions: Tuple[MissAttribution, ...]
    energy: EnergyDecomposition

    def to_json(self) -> dict:
        """A JSON-safe dict, ``"v"``-tagged with the schema version."""
        payload = asdict(self)
        payload["ledger"] = (
            None
            if self.ledger is None
            else {
                **asdict(self.ledger),
                "worst": [list(w) for w in self.ledger.worst],
            }
        )
        payload["miss_attributions"] = [asdict(m) for m in self.miss_attributions]
        return {"v": DIAGNOSIS_VERSION, **payload}

    @classmethod
    def from_json(cls, payload: dict) -> "PolicyDiagnosis":
        """Rebuild a diagnosis from :meth:`to_json` output.

        Raises:
            ValueError: for payloads of an unknown schema version.
        """
        version = payload.get("v")
        if version != DIAGNOSIS_VERSION:
            raise ValueError(
                f"unknown diagnosis schema version {version!r} "
                f"(expected {DIAGNOSIS_VERSION})"
            )
        data = {k: v for k, v in payload.items() if k != "v"}
        ledger = data["ledger"]
        data["settling"] = SettlingReport(**data["settling"])
        data["ledger"] = (
            None
            if ledger is None
            else PredictionLedger(
                **{
                    **ledger,
                    "worst": tuple(tuple(w) for w in ledger["worst"]),
                }
            )
        )
        data["miss_attributions"] = tuple(
            MissAttribution(**m) for m in data["miss_attributions"]
        )
        data["energy"] = EnergyDecomposition(**data["energy"])
        return cls(**data)


def diagnose(
    result: ExperimentResult,
    policy: str,
    workload: str,
    machine: Union[Machine, "object", None] = None,
    machine_label: str = "",
    seed: int = 0,
    baseline_j: Optional[float] = None,
) -> PolicyDiagnosis:
    """Diagnose one finished experiment.

    Args:
        result: a full-recording experiment result.
        policy: the policy's catalog name (drives the predictor tie-in).
        workload: the workload's catalog name (for labelling).
        machine: the machine (or a zero-argument factory / spec for one)
            the run executed on; None uses the default machine.
        machine_label: label for the diagnosis record (defaults to the
            spec's label when ``machine`` has one).
        seed: the run's workload seed (for labelling).
        baseline_j: exact energy of the ideal feasible constant step (see
            :func:`repro.measure.runner.find_ideal_constant`), or None
            when no constant step is feasible.

    Raises:
        ValueError: if the result was recorded without the full recorder
            set (diagnosis needs the quantum log and power timeline).
    """
    from repro.measure.runner import default_machine

    if machine is None:
        machine = default_machine()
    if not machine_label:
        machine_label = getattr(machine, "label", "") or "itsy"
    if not isinstance(machine, Machine):
        machine = machine()  # a MachineSpec or factory callable
    run = result.run
    decay_n = predictor_decay_n(policy)
    return PolicyDiagnosis(
        policy=policy,
        workload=workload,
        machine=machine_label,
        seed=seed,
        duration_us=run.duration_us,
        quanta=len(run.quanta),
        mean_utilization=run.mean_utilization(),
        misses=len(result.misses),
        settling=settling_report(run, decay_n),
        ledger=prediction_ledger(run, decay_n),
        miss_attributions=tuple(
            attribute_misses(
                run,
                tolerance_us=result.tolerance_us,
                max_step_index=machine.clock_table.max_index,
            )
        ),
        energy=energy_decomposition(run, machine, baseline_j),
    )


# ---------------------------------------------------------------------------
# JSONL persistence (mirrors obs.runlog)
# ---------------------------------------------------------------------------


class DiagnosisWriter:
    """Appends diagnoses to a JSONL file, one object per line.

    Lazily opens on first write, so constructing a writer for a path that
    is never used leaves no file behind.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self.written = 0

    def write(self, diagnosis: PolicyDiagnosis) -> None:
        """Append one diagnosis record."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        json.dump(diagnosis.to_json(), self._fh)
        self._fh.write("\n")
        self._fh.flush()
        self.written += 1

    def close(self) -> None:
        """Close the underlying file (no-op if nothing was written)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "DiagnosisWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_diagnoses(path: Union[str, Path]) -> List[PolicyDiagnosis]:
    """Load every diagnosis from a JSONL file written by
    :class:`DiagnosisWriter`.

    Raises:
        ValueError: naming the offending line on malformed input.
    """
    out: List[PolicyDiagnosis] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(f"{path}:{lineno}: bad diagnosis line") from err
            if not isinstance(payload, dict):
                raise ValueError(f"{path}:{lineno}: not an object")
            out.append(PolicyDiagnosis.from_json(payload))
    return out
