"""Sweep-level telemetry: spans, live progress, and the heartbeat protocol.

PR 3/4 made individual *runs* observable; this module does the same for
the sweep pipeline itself.  Three cooperating pieces:

- :class:`SweepTelemetry` — a span recorder for the engine's lifecycle
  (pool spin-up, chunk submission, per-cell execution, cache hits,
  baseline dedup, result merge).  Spans live on *lanes*: lane 0 is the
  engine (the parent process), and every pool worker gets its own lane
  keyed by OS pid, so :meth:`SweepTelemetry.chrome_trace` exports a
  payload — validated by the very same
  :func:`repro.obs.trace.validate_chrome_trace` the per-run exporter
  uses — that opens in Perfetto with one track per worker.

- :class:`ProgressModel` — the deterministic state machine behind the
  live progress display.  It consumes the heartbeat event stream
  (cell-started / cell-finished / cache-hit) plus an injectable clock
  and derives everything the renderer shows: cells done/total, cells/s,
  ETA, cache-hit rate, per-worker utilization, and straggler flags for
  in-flight cells that exceed :data:`STRAGGLER_FACTOR` x the running
  median cell wall time.  No wall-clock reads of its own, so tests
  drive it with synthetic streams and a fake clock — no sleeps.

- :class:`ProgressRenderer` — a throttled single-line TTY renderer over
  a :class:`ProgressModel`.  It only draws when its stream is a TTY (or
  when explicitly forced), so piping a ``--progress`` sweep degrades to
  the engine's usual one-line stderr summary.

The heartbeat protocol itself is owned by the sweep engine
(:mod:`repro.measure.parallel`): workers ``put`` small tuples —
``(HEARTBEAT_START, pid, cell_id, t)`` and
``(HEARTBEAT_DONE, pid, cell_id, t)`` — on a ``multiprocessing`` queue
the pool inherits at spin-up, and the parent drains them into the model
from a background thread while futures are in flight.  Heartbeats only
drive the *display*; results, run-logs and telemetry spans all travel
on the pool's result channel, so a lost trailing heartbeat can never
lose data.

Everything here is a pure observer: telemetry and progress watch the
sweep, they never steer it, and sweep results are bitwise-identical
with them on or off (``benchmarks/bench_telemetry_overhead.py`` holds
the overhead to the same bar the recorder benchmarks use).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from threading import Lock
from typing import Callable, Dict, IO, List, Optional, Tuple

#: Heartbeat event tags (first tuple element) workers emit per cell.
HEARTBEAT_START = "start"
HEARTBEAT_DONE = "done"

#: An in-flight cell is flagged a straggler once its elapsed wall time
#: exceeds this many times the running median of completed cell walls.
STRAGGLER_FACTOR = 4.0

#: Completed-cell samples needed before the running median is trusted
#: enough to flag stragglers (early cells are all "slow" relative to an
#: empty distribution).
STRAGGLER_MIN_SAMPLES = 3

#: The synthetic trace-event process id the sweep's tracks group under.
TRACE_PID_SWEEP = 1

#: Lane number of the engine (parent-process) track.
LANE_ENGINE = 0


@dataclass(frozen=True)
class Span:
    """One closed interval on a telemetry lane (a Chrome ``X`` event)."""

    name: str
    start_us: float
    dur_us: float
    lane: int
    args: Tuple[Tuple[str, object], ...] = ()


@dataclass(frozen=True)
class Instant:
    """One point event on a telemetry lane (a Chrome ``i`` event)."""

    name: str
    ts_us: float
    lane: int
    args: Tuple[Tuple[str, object], ...] = ()


class SweepTelemetry:
    """Collects sweep-pipeline spans and exports them as a Chrome trace.

    Timestamps are relative to :meth:`start` (the engine calls it when
    its first top-level batch begins) on the ``perf_counter`` timebase,
    which is system-wide on the platforms the pool runs on — worker
    timestamps ship home in result tuples and land on the same axis.

    Lanes are assigned on first sight of a worker pid
    (:meth:`lane_for`); lane 0 is always the engine itself.  The
    exporter emits one named thread per lane, so a grid sweep opens in
    Perfetto with the engine's orchestration up top and one execution
    track per pool worker below it.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._t0: Optional[float] = None
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._lanes: Dict[int, int] = {}
        self._lock = Lock()

    # -- timebase ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether the sweep timebase has been anchored yet."""
        return self._t0 is not None

    def start(self) -> None:
        """Anchor the timebase at "now" (idempotent)."""
        if self._t0 is None:
            self._t0 = self._clock()

    def now_us(self) -> float:
        """Microseconds since :meth:`start` (anchors it if needed)."""
        self.start()
        assert self._t0 is not None
        return (self._clock() - self._t0) * 1e6

    def to_us(self, t_abs: float) -> float:
        """Map an absolute ``perf_counter`` reading onto the sweep axis.

        Clamped at zero: a worker clock marginally behind the anchor
        (or an event from before :meth:`start`) must not produce the
        negative timestamps the trace format forbids.
        """
        self.start()
        assert self._t0 is not None
        return max(0.0, (t_abs - self._t0) * 1e6)

    # -- lanes ------------------------------------------------------------------

    def lane_for(self, pid: int) -> int:
        """The (stable) lane of worker ``pid``, assigned on first use.

        Thread-safe: the heartbeat pump and the engine's merge loop may
        both discover a worker first.
        """
        with self._lock:
            lane = self._lanes.get(pid)
            if lane is None:
                lane = len(self._lanes) + 1
                self._lanes[pid] = lane
            return lane

    def ordinal_for(self, pid: int) -> int:
        """The zero-based worker ordinal of ``pid`` (lane - 1)."""
        return self.lane_for(pid) - 1

    @property
    def worker_lanes(self) -> Dict[int, int]:
        """A snapshot of the pid -> lane assignment."""
        with self._lock:
            return dict(self._lanes)

    # -- recording --------------------------------------------------------------

    def add_span(
        self,
        name: str,
        start_us: float,
        end_us: float,
        lane: int = LANE_ENGINE,
        **args: object,
    ) -> None:
        """Record a closed span; zero-length spans are kept (dur 0)."""
        self.spans.append(
            Span(
                name=name,
                start_us=start_us,
                dur_us=max(0.0, end_us - start_us),
                lane=lane,
                args=tuple(sorted(args.items())),
            )
        )

    def add_instant(
        self, name: str, ts_us: Optional[float] = None,
        lane: int = LANE_ENGINE, **args: object,
    ) -> None:
        """Record a point event (defaults to "now")."""
        self.instants.append(
            Instant(
                name=name,
                ts_us=self.now_us() if ts_us is None else ts_us,
                lane=lane,
                args=tuple(sorted(args.items())),
            )
        )

    class _SpanHandle:
        """Context manager produced by :meth:`SweepTelemetry.span`."""

        __slots__ = ("_telemetry", "_name", "_lane", "_args", "_start_us")

        def __init__(self, telemetry, name, lane, args):
            self._telemetry = telemetry
            self._name = name
            self._lane = lane
            self._args = args

        def __enter__(self):
            self._start_us = self._telemetry.now_us()
            return self

        def __exit__(self, *exc_info):
            self._telemetry.add_span(
                self._name, self._start_us, self._telemetry.now_us(),
                lane=self._lane, **self._args,
            )

    def span(self, name: str, lane: int = LANE_ENGINE, **args: object):
        """Time a ``with`` block as a span on ``lane``."""
        return self._SpanHandle(self, name, lane, args)

    # -- export -----------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The collected spans as a Chrome trace-event JSON payload.

        Emits the same event subset the per-run exporter does (``M`` /
        ``X`` / ``i``), under one synthetic process with the engine lane
        and one thread per worker — structurally valid under
        :func:`repro.obs.trace.validate_chrome_trace`.
        """
        events: List[dict] = [
            _meta(None, "process_name", "sweep engine"),
            _meta(LANE_ENGINE, "thread_name", "engine"),
        ]
        for pid, lane in sorted(self.worker_lanes.items(), key=lambda kv: kv[1]):
            events.append(
                _meta(lane, "thread_name", f"worker {lane - 1} (pid {pid})")
            )
        for span in self.spans:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.dur_us,
                "pid": TRACE_PID_SWEEP,
                "tid": span.lane,
                "args": dict(span.args),
            })
        for inst in self.instants:
            events.append({
                "name": inst.name,
                "ph": "i", "s": "t",
                "ts": inst.ts_us,
                "pid": TRACE_PID_SWEEP,
                "tid": inst.lane,
                "args": dict(inst.args),
            })
        events.sort(key=lambda e: (0 if e["ph"] == "M" else 1, e.get("ts", 0.0)))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.telemetry",
                "spans": len(self.spans),
                "instants": len(self.instants),
                "workers": len(self._lanes),
            },
        }


def _meta(tid: Optional[int], name: str, value: str) -> dict:
    event = {"name": name, "ph": "M", "pid": TRACE_PID_SWEEP,
             "args": {"name": value}}
    if tid is not None:
        event["tid"] = tid
    return event


# -- progress -------------------------------------------------------------------


@dataclass(frozen=True)
class Straggler:
    """An in-flight cell running long relative to its peers."""

    worker_pid: int
    cell_id: int
    label: str
    elapsed_s: float
    median_s: float


@dataclass(frozen=True)
class ProgressSnapshot:
    """Everything the renderer (or a test) reads, derived at one instant."""

    done: int
    total: int
    executed: int
    cached: int
    in_flight: int
    elapsed_s: float
    cells_per_s: float
    eta_s: Optional[float]
    cache_hit_rate: float
    worker_utilization: float
    median_cell_s: Optional[float]
    stragglers: Tuple[Straggler, ...] = ()

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1] (1.0 for the 0-cell sweep)."""
        return self.done / self.total if self.total else 1.0


@dataclass
class _WorkerState:
    busy_s: float = 0.0
    cells: int = 0


class ProgressModel:
    """The deterministic core of the live progress display.

    Consumes heartbeat-shaped events with explicit timestamps (the
    engine feeds it wall-clock readings; tests feed it a fake clock's)
    and derives the display quantities on demand.  All methods are
    called under the engine's progress lock, so the model itself keeps
    no locking.

    Args:
        total: unique cells the sweep will serve (grows via
            :meth:`add_total` as nested baseline batches are
            discovered).
        straggler_factor: multiple of the running median wall time at
            which an in-flight cell is flagged.
        min_samples: completed cells required before stragglers are
            flagged at all.
    """

    def __init__(
        self,
        total: int = 0,
        straggler_factor: float = STRAGGLER_FACTOR,
        min_samples: int = STRAGGLER_MIN_SAMPLES,
    ):
        if total < 0:
            raise ValueError("total must be non-negative")
        self.total = total
        self.done = 0
        self.executed = 0
        self.cached = 0
        self.straggler_factor = straggler_factor
        self.min_samples = min_samples
        self._start_t: Optional[float] = None
        self._in_flight: Dict[Tuple[int, int], Tuple[float, str]] = {}
        self._walls: List[float] = []
        self._workers: Dict[int, _WorkerState] = {}

    # -- event intake -----------------------------------------------------------

    def start(self, t: float) -> None:
        """Anchor elapsed-time accounting (idempotent; first event wins)."""
        if self._start_t is None:
            self._start_t = t

    def add_total(self, count: int) -> None:
        """Grow the expected cell count (nested baseline batches)."""
        self.total += count

    def cell_started(
        self, pid: int, cell_id: int, t: float, label: str = ""
    ) -> None:
        """A worker began executing a cell."""
        self.start(t)
        self._in_flight[(pid, cell_id)] = (t, label)
        self._workers.setdefault(pid, _WorkerState())

    def cell_finished(
        self, pid: int, cell_id: int, t: float, cached: bool = False
    ) -> None:
        """A worker finished a cell (start event optional but expected)."""
        self.start(t)
        started = self._in_flight.pop((pid, cell_id), None)
        worker = self._workers.setdefault(pid, _WorkerState())
        if started is not None:
            wall = max(0.0, t - started[0])
            self._walls.append(wall)
            worker.busy_s += wall
        worker.cells += 1
        self.done += 1
        if cached:
            self.cached += 1
        else:
            self.executed += 1

    def cache_hit(self, cell_id: int, t: float) -> None:
        """The parent served a cell from the result cache."""
        self.start(t)
        self.done += 1
        self.cached += 1

    # -- derived quantities -----------------------------------------------------

    def elapsed_s(self, now: float) -> float:
        """Seconds since the first event (0.0 before any)."""
        return max(0.0, now - self._start_t) if self._start_t is not None else 0.0

    def cells_per_s(self, now: float) -> float:
        """Completed cells per elapsed second."""
        elapsed = self.elapsed_s(now)
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_s(self, now: float) -> Optional[float]:
        """Seconds until done at the current rate (None before a rate
        exists, 0.0 once every cell is served)."""
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        rate = self.cells_per_s(now)
        return remaining / rate if rate > 0 else None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed cells answered from the cache."""
        return self.cached / self.done if self.done else 0.0

    def worker_utilization(self, now: float) -> float:
        """Mean fraction of elapsed time the workers spent in cells.

        In-flight cells count as busy up to ``now``; 0.0 before any
        worker has appeared.
        """
        elapsed = self.elapsed_s(now)
        if not self._workers or elapsed <= 0:
            return 0.0
        busy = sum(w.busy_s for w in self._workers.values())
        for (pid, _cell), (t_start, _label) in self._in_flight.items():
            busy += max(0.0, now - t_start)
        return busy / (len(self._workers) * elapsed)

    def median_cell_s(self) -> Optional[float]:
        """Running median of completed cell wall times (None when empty)."""
        if not self._walls:
            return None
        ordered = sorted(self._walls)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def stragglers(self, now: float) -> Tuple[Straggler, ...]:
        """In-flight cells whose elapsed time exceeds ``factor`` x the
        running median (empty until enough cells completed), worst
        first."""
        if len(self._walls) < self.min_samples:
            return ()
        median = self.median_cell_s()
        if median is None or median <= 0:
            return ()
        bar = self.straggler_factor * median
        out = []
        for (pid, cell_id), (t_start, label) in self._in_flight.items():
            elapsed = now - t_start
            if elapsed > bar:
                out.append(Straggler(
                    worker_pid=pid, cell_id=cell_id, label=label,
                    elapsed_s=elapsed, median_s=median,
                ))
        out.sort(key=lambda s: -s.elapsed_s)
        return tuple(out)

    def snapshot(self, now: float) -> ProgressSnapshot:
        """All derived quantities at ``now``, frozen."""
        return ProgressSnapshot(
            done=self.done,
            total=self.total,
            executed=self.executed,
            cached=self.cached,
            in_flight=len(self._in_flight),
            elapsed_s=self.elapsed_s(now),
            cells_per_s=self.cells_per_s(now),
            eta_s=self.eta_s(now),
            cache_hit_rate=self.cache_hit_rate,
            worker_utilization=self.worker_utilization(now),
            median_cell_s=self.median_cell_s(),
            stragglers=self.stragglers(now),
        )


def format_progress_line(snap: ProgressSnapshot) -> str:
    """The one-line rendering of a progress snapshot.

    Pure (no clock reads), so display formatting is testable without a
    terminal: ``sweep 12/40 (30%) | 19.3 cells/s | eta 3s | cache 25% |
    workers 87% | straggler best/mpeg 8.1s``.
    """
    pct = f"{snap.fraction * 100:.0f}%"
    parts = [f"sweep {snap.done}/{snap.total} ({pct})"]
    parts.append(f"{snap.cells_per_s:.1f} cells/s")
    if snap.eta_s is None:
        parts.append("eta ?")
    else:
        parts.append(f"eta {_fmt_duration(snap.eta_s)}")
    parts.append(f"cache {snap.cache_hit_rate * 100:.0f}%")
    parts.append(f"workers {snap.worker_utilization * 100:.0f}%")
    if snap.stragglers:
        worst = snap.stragglers[0]
        label = worst.label or f"cell {worst.cell_id}"
        parts.append(f"straggler {label} {worst.elapsed_s:.1f}s")
    return " | ".join(parts)


def _fmt_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressRenderer:
    """Throttled single-line TTY renderer over a :class:`ProgressModel`.

    Draws a carriage-return-refreshed status line on ``stream`` at most
    every ``min_interval_s`` (forced on :meth:`finish`).  Rendering is
    enabled only when the stream reports itself a TTY, unless ``enabled``
    overrides the check — a piped ``--progress`` sweep therefore writes
    nothing here and falls back to the engine's one-line summary.

    The clock is injectable for tests; only *display throttling* uses
    it (the model's numbers always come from event timestamps).
    """

    def __init__(
        self,
        model: ProgressModel,
        stream: IO[str],
        min_interval_s: float = 0.1,
        clock: Callable[[], float] = time.perf_counter,
        enabled: Optional[bool] = None,
    ):
        self.model = model
        self.stream = stream
        self.min_interval_s = min_interval_s
        self._clock = clock
        if enabled is None:
            isatty = getattr(stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self._last_draw: Optional[float] = None
        self._last_width = 0

    def update(self, force: bool = False) -> None:
        """Redraw the line if enabled and the throttle interval passed."""
        if not self.enabled:
            return
        now = self._clock()
        if (
            not force
            and self._last_draw is not None
            and now - self._last_draw < self.min_interval_s
        ):
            return
        self._last_draw = now
        line = format_progress_line(self.model.snapshot(now))
        pad = " " * max(0, self._last_width - len(line))
        self.stream.write("\r" + line + pad)
        self.stream.flush()
        self._last_width = len(line)

    def finish(self) -> None:
        """Draw the final state, then clear the line (so the engine's
        summary prints on a clean row)."""
        if not self.enabled:
            return
        self.update(force=True)
        self.stream.write("\r" + " " * self._last_width + "\r")
        self.stream.flush()
        self._last_width = 0
