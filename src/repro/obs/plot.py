"""Dependency-free inline-SVG charts for the fleet dashboard.

The ROADMAP asks for "an actual plotted curve (cells/s over commits,
not just a sparkline)".  This module draws it without pulling a plotting
dependency into the simulator: plain SVG text, deterministic for a given
record sequence (golden-testable, diff-friendly artifacts), legible both
inline in the HTML report and as a standalone ``repro fleet --plot``
file.

Three fleet charts:

- **throughput** — cells/s per ledger sweep, oldest first, with a second
  host-normalized series when any record carries a calibration score;
- **cache-hit rate** — the percentage of cells answered from the result
  cache, to spot sweeps that silently stopped reusing it;
- **phase mix** — a stacked area of nominal per-cell seconds by pipeline
  phase (:mod:`repro.obs.profile`), showing *where* the wall time of a
  cell went as the code evolved.

Every chart is a pure function of the records; no clocks, no I/O.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.fleet import FleetRecord
from repro.obs.profile import PHASE_ORDER

#: Default panel geometry (pixels).
PANEL_WIDTH = 640
PANEL_HEIGHT = 220
_MARGIN_LEFT = 58
_MARGIN_RIGHT = 16
_MARGIN_TOP = 30
_MARGIN_BOTTOM = 34

#: Series palette (dark-on-light, also readable in the HTML report).
_COLORS = (
    "#2a6fb0", "#b0582a", "#2a7d4f", "#8c2ab0", "#b02a37",
    "#6b6b2a", "#2ab0a5", "#555577",
)

_SVG_STYLE = (
    "text { font: 11px system-ui, sans-serif; }"
    " .title { font-size: 13px; font-weight: 600; }"
    " .axis { stroke: #888; stroke-width: 1; }"
    " .grid { stroke: #ddd; stroke-width: 1; }"
    " .lbl { fill: #444; }"
)


def _fmt_num(value: float) -> str:
    """Compact tick label: 0.25, 1.5, 12, 1200."""
    if abs(value) >= 100 or value == int(value):
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def _ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    """n+1 evenly spaced tick values from lo to hi."""
    if hi <= lo:
        hi = lo + 1.0
    return [lo + (hi - lo) * i / n for i in range(n + 1)]


class _Panel:
    """One chart panel: axes, grid and data drawn into an SVG group."""

    def __init__(
        self,
        title: str,
        x_labels: Sequence[str],
        y_max: float,
        y_unit: str = "",
        width: int = PANEL_WIDTH,
        height: int = PANEL_HEIGHT,
    ):
        self.title = title
        self.x_labels = list(x_labels)
        self.y_max = y_max if y_max > 0 else 1.0
        self.y_unit = y_unit
        self.width = width
        self.height = height
        self.plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
        self.plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM
        self.parts: List[str] = []
        self._legend_x = width - _MARGIN_RIGHT

    def x_at(self, index: int) -> float:
        """Pixel x of data index ``index`` (single points centered)."""
        n = max(1, len(self.x_labels) - 1)
        if len(self.x_labels) <= 1:
            return _MARGIN_LEFT + self.plot_w / 2
        return _MARGIN_LEFT + self.plot_w * index / n

    def y_at(self, value: float) -> float:
        """Pixel y of data value ``value`` (zero-based scale)."""
        frac = min(1.0, max(0.0, value / self.y_max))
        return _MARGIN_TOP + self.plot_h * (1.0 - frac)

    def frame(self) -> None:
        """Title, axes, horizontal grid with tick labels, x labels."""
        p = self.parts
        p.append(
            f'<text class="title lbl" x="{_MARGIN_LEFT}" y="16">'
            f"{escape(self.title)}</text>"
        )
        x0, x1 = _MARGIN_LEFT, _MARGIN_LEFT + self.plot_w
        y0, y1 = _MARGIN_TOP, _MARGIN_TOP + self.plot_h
        for tick in _ticks(0.0, self.y_max):
            y = self.y_at(tick)
            cls = "axis" if tick == 0.0 else "grid"
            p.append(f'<line class="{cls}" x1="{x0}" y1="{y:.1f}" '
                     f'x2="{x1}" y2="{y:.1f}"/>')
            p.append(
                f'<text class="lbl" x="{x0 - 6}" y="{y + 4:.1f}" '
                f'text-anchor="end">{_fmt_num(tick)}{self.y_unit}</text>'
            )
        p.append(f'<line class="axis" x1="{x0}" y1="{y0}" '
                 f'x2="{x0}" y2="{y1}"/>')
        # At most ~8 x labels; always the first and the last.
        n = len(self.x_labels)
        if n:
            step = max(1, -(-n // 8))
            shown = sorted(set(range(0, n, step)) | {n - 1})
            for i in shown:
                x = self.x_at(i)
                p.append(
                    f'<text class="lbl" x="{x:.1f}" y="{y1 + 14}" '
                    f'text-anchor="middle">{escape(self.x_labels[i])}</text>'
                )

    def polyline(self, values: Sequence[Optional[float]], color: str,
                 name: str = "") -> None:
        """One data series as a line (plus point markers); None = gap."""
        runs: List[List[Tuple[float, float]]] = [[]]
        for i, value in enumerate(values):
            if value is None:
                if runs[-1]:
                    runs.append([])
                continue
            runs[-1].append((self.x_at(i), self.y_at(value)))
        for run in runs:
            if len(run) > 1:
                points = " ".join(f"{x:.1f},{y:.1f}" for x, y in run)
                self.parts.append(
                    f'<polyline fill="none" stroke="{color}" '
                    f'stroke-width="2" points="{points}"/>'
                )
            for x, y in run:
                self.parts.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" '
                    f'fill="{color}"/>'
                )
        if name:
            self.legend(name, color)

    def area(self, lower: Sequence[float], upper: Sequence[float],
             color: str, name: str = "") -> None:
        """A filled band between two cumulative series (stacked areas)."""
        if not upper:
            return
        up = [(self.x_at(i), self.y_at(v)) for i, v in enumerate(upper)]
        lo = [(self.x_at(i), self.y_at(v)) for i, v in enumerate(lower)]
        points = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in up + list(reversed(lo))
        )
        self.parts.append(
            f'<polygon fill="{color}" fill-opacity="0.75" '
            f'stroke="{color}" stroke-width="1" points="{points}"/>'
        )
        if name:
            self.legend(name, color)

    def legend(self, name: str, color: str) -> None:
        """Right-aligned legend entries, filling leftwards."""
        label = escape(name)
        width = 10 + 6 * len(name)
        self._legend_x -= width + 14
        x = self._legend_x
        self.parts.append(
            f'<rect x="{x}" y="8" width="10" height="10" fill="{color}"/>'
        )
        self.parts.append(
            f'<text class="lbl" x="{x + 14}" y="17">{label}</text>'
        )

    def svg(self, y_offset: int = 0, standalone: bool = True) -> str:
        """The panel as a full ``<svg>`` or an offset ``<g>`` fragment."""
        body = "\n".join(self.parts)
        if standalone:
            return (
                f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}" '
                f'role="img" aria-label="{escape(self.title)}">'
                f"<style>{_SVG_STYLE}</style>\n{body}\n</svg>"
            )
        return f'<g transform="translate(0,{y_offset})">\n{body}\n</g>'


def _x_labels(records: Sequence[FleetRecord]) -> List[str]:
    """Short per-sweep x labels: the commit sha when known, else the
    sweep id's time-of-day part."""
    labels = []
    for record in records:
        if record.git_sha:
            labels.append(record.git_sha[:7])
        else:
            stamp = record.sweep_id.partition("-")[0]
            labels.append(stamp[-6:] or record.sweep_id[:7])
    return labels


def throughput_chart(
    records: Sequence[FleetRecord], standalone: bool = True,
    y_offset: int = 0,
) -> str:
    """Cells/s per sweep, raw plus host-normalized when calibrated."""
    ordered = sorted(records, key=lambda r: r.unix_time)
    raw = [r.cells_per_s if r.cells_executed > 0 else None for r in ordered]
    normalized = [
        r.normalized_cells_per_s if r.cells_executed > 0 else None
        for r in ordered
    ]
    have_norm = any(v is not None for v in normalized)
    peak = max([v for v in raw + normalized if v is not None] or [1.0])
    panel = _Panel(
        "Sweep throughput over commits", _x_labels(ordered), peak * 1.1
    )
    panel.frame()
    if have_norm:
        panel.polyline(normalized, _COLORS[1], "normalized cells/s")
    panel.polyline(raw, _COLORS[0], "cells/s")
    return panel.svg(y_offset=y_offset, standalone=standalone)


def cache_hit_chart(
    records: Sequence[FleetRecord], standalone: bool = True,
    y_offset: int = 0,
) -> str:
    """Cache-hit rate (percent of cells) per sweep."""
    ordered = sorted(records, key=lambda r: r.unix_time)
    rates = [r.cache_hit_rate * 100.0 for r in ordered]
    panel = _Panel(
        "Cache-hit rate over commits", _x_labels(ordered), 100.0, y_unit="%"
    )
    panel.frame()
    panel.polyline(rates, _COLORS[2], "cache-hit %")
    return panel.svg(y_offset=y_offset, standalone=standalone)


def phase_mix_chart(
    records: Sequence[FleetRecord], standalone: bool = True,
    y_offset: int = 0,
) -> str:
    """Stacked per-cell phase seconds (host-normalized) per sweep."""
    ordered = [
        r for r in sorted(records, key=lambda r: r.unix_time)
        if r.phases and r.cells_executed > 0
    ]
    per_cell: List[Dict[str, float]] = []
    for r in ordered:
        scale = (r.host_score if r.host_score > 0 else 1.0) / r.cells_executed
        per_cell.append({p: s * scale for p, s in r.phases})
    phases = [p for p in PHASE_ORDER if any(p in d for d in per_cell)]
    phases += sorted(
        {p for d in per_cell for p in d} - set(phases)
    )
    totals = [sum(d.values()) for d in per_cell] or [1.0]
    panel = _Panel(
        "Per-cell wall time by phase (s/cell, host-normalized)",
        _x_labels(ordered), max(totals) * 1.1,
    )
    panel.frame()
    if not ordered:
        panel.parts.append(
            f'<text class="lbl" x="{PANEL_WIDTH // 2}" y="{PANEL_HEIGHT // 2}"'
            f' text-anchor="middle">no profiled sweeps in the ledger'
            f"</text>"
        )
        return panel.svg(y_offset=y_offset, standalone=standalone)
    lower = [0.0] * len(per_cell)
    for i, phase in enumerate(phases):
        upper = [
            low + d.get(phase, 0.0) for low, d in zip(lower, per_cell)
        ]
        panel.area(lower, upper, _COLORS[i % len(_COLORS)], phase)
        lower = upper
    return panel.svg(y_offset=y_offset, standalone=standalone)


#: The fleet dashboard's chart set, in display order.
FLEET_CHARTS = (throughput_chart, cache_hit_chart, phase_mix_chart)


def fleet_charts(records: Sequence[FleetRecord]) -> List[str]:
    """All fleet charts as standalone ``<svg>`` strings (HTML-embeddable)."""
    return [chart(records) for chart in FLEET_CHARTS]


def fleet_plot_svg(records: Sequence[FleetRecord]) -> str:
    """One standalone SVG document stacking every fleet chart.

    This is what ``repro fleet --plot`` writes: a single file that opens
    in any browser or image viewer, no server, no scripts.
    """
    height = PANEL_HEIGHT * len(FLEET_CHARTS)
    panels = [
        chart(records, standalone=False, y_offset=i * PANEL_HEIGHT)
        for i, chart in enumerate(FLEET_CHARTS)
    ]
    body = "\n".join(panels)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{PANEL_WIDTH}" '
        f'height="{height}" viewBox="0 0 {PANEL_WIDTH} {height}" '
        f'role="img" aria-label="Fleet perf trajectory">'
        f"<style>{_SVG_STYLE}</style>\n{body}\n</svg>"
    )
