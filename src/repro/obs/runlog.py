"""Structured JSONL run-logs: a durable record of what a sweep executed.

The paper's Table 2 footnotes exactly how each number was produced (how
many runs, which seeds, which machine).  Long sweeps deserve the same
auditability: :class:`RunLogWriter` appends one JSON object per sweep
cell — run id (the cell's content-address in the result cache), machine,
policy, workload, seed, energy, misses, cache status, wall time — so a
finished sweep can be reconstructed, diffed, or re-keyed after the fact
without rerunning anything.

Records are flushed line-by-line, so a log is readable (and every
completed cell is preserved) even if the sweep crashes mid-grid.  The
format is append-only JSONL: one self-describing object per line, no
header, safe to concatenate across sweeps sharing a log file.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

import repro

#: Bump when the record layout changes incompatibly.
#: Version 2 added provenance: every record carries the ``repro`` package
#: version alongside the ``v`` schema tag, so cross-run comparisons can
#: detect mismatched inputs instead of silently merging them.
#: Version 3 added worker attribution — ``worker_pid`` and
#: ``worker_ordinal`` of the pool process that executed the cell (null
#: for cache hits) — so fleet reports can attribute stragglers.  v2
#: records remain readable: the new fields default to None.
RUN_LOG_VERSION = 3


@dataclass(frozen=True)
class RunLogRecord:
    """One sweep cell's audit record.

    Attributes:
        run_id: the cell's cache key (content address) — stable across
            hosts, so identical cells in different logs share an id.
        policy: policy grammar name (with factory params appended when
            the spec carries any).
        workload: workload name.
        machine: machine spec string (``itsy``, ``itsy@1.23``, ``sa2``).
        seed: workload jitter seed.
        duration_us: simulated length.
        energy_j: measured (DAQ or exact) energy.
        exact_energy_j: the analytic integral.
        miss_count: deadline misses beyond the workload tolerance.
        cache: ``"hit"`` or ``"executed"``.
        wall_s: wall-clock execution time (0.0 for cache hits).
        unix_time: wall-clock time the record was written.
        repro_version: the simulator package version that produced the
            record (defaults to the running package).
        worker_pid: OS pid of the pool process that executed the cell
            (the parent's own pid for in-process execution; None for
            cache hits, which no worker touched).
        worker_ordinal: stable zero-based index of that worker within
            the sweep — matches the telemetry trace lane numbering, so
            a straggler flagged in the run-log points at a Perfetto
            track.  None for cache hits.
    """

    run_id: str
    policy: str
    workload: str
    machine: str
    seed: int
    duration_us: float
    energy_j: float
    exact_energy_j: float
    miss_count: int
    cache: str
    wall_s: float
    unix_time: float
    repro_version: str = repro.__version__
    worker_pid: Optional[int] = None
    worker_ordinal: Optional[int] = None

    def to_json(self) -> dict:
        """The record as a JSON-safe dict, version-stamped."""
        return {"v": RUN_LOG_VERSION, **asdict(self)}


class RunLogWriter:
    """Appends :class:`RunLogRecord` lines to a JSONL file.

    Opens lazily on the first write (so merely configuring a log path
    never creates an empty file) and flushes every record.  Usable as a
    context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        self.written = 0

    def write(self, record: RunLogRecord) -> None:
        """Append one record and flush it to disk."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        """Close the underlying file (no-op if never written to)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def now_unix() -> float:
    """Wall-clock timestamp for run-log records (patchable in tests)."""
    return time.time()


class RunLogRecords(List[dict]):
    """The parsed run-log: a plain list of record dicts, plus the
    reader-level warnings for lines that could not be parsed.

    Being a ``list`` subclass keeps every existing caller working
    unchanged; report code picks up :attr:`warnings` to surface skipped
    lines next to the provenance warnings.
    """

    def __init__(self, records: Iterable[dict] = (), warnings: Iterable[str] = ()):
        super().__init__(records)
        self.warnings: Tuple[str, ...] = tuple(warnings)


def read_run_log(path: Union[str, Path]) -> RunLogRecords:
    """Parse a JSONL run-log back into a list of record dicts.

    Blank lines are skipped.  Malformed lines — the torn trailing line
    of a sweep that crashed mid-write, or stray corruption — are
    *skipped* rather than raised: losing one record must not void the
    audit value of every other line.  Each skip is reported in the
    returned list's ``warnings`` so reports surface the damage instead
    of hiding it.
    """
    records: List[dict] = []
    warnings: List[str] = []
    for lineno, line in enumerate(_lines(path), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("line is not a JSON object")
        except ValueError as exc:
            warnings.append(
                f"{path}:{lineno}: skipped unreadable run-log line "
                f"(truncated write?): {exc}"
            )
            continue
        records.append(record)
    return RunLogRecords(records, warnings)


def provenance_warnings(records: List[dict]) -> List[str]:
    """Cross-record consistency problems worth flagging before merging.

    A run-log is safe to aggregate when every record shares one schema
    version and one simulator version; records predating the provenance
    fields (schema v1) are flagged rather than rejected.  Returns
    human-readable warning strings (empty when the log is homogeneous).
    """
    warnings: List[str] = []
    schema_versions = sorted({str(r.get("v", "?")) for r in records})
    if len(schema_versions) > 1:
        warnings.append(
            "mixed run-log schema versions: " + ", ".join(schema_versions)
        )
    package_versions = sorted(
        {str(r.get("repro_version", "<pre-provenance>")) for r in records}
    )
    if len(package_versions) > 1:
        warnings.append(
            "records produced by different simulator versions: "
            + ", ".join(package_versions)
        )
    return warnings


def _lines(path: Union[str, Path]) -> Iterator[str]:
    with Path(path).open() as handle:
        yield from handle
