"""Structured JSONL run-logs: a durable record of what a sweep executed.

The paper's Table 2 footnotes exactly how each number was produced (how
many runs, which seeds, which machine).  Long sweeps deserve the same
auditability: :class:`RunLogWriter` appends one JSON object per sweep
cell — run id (the cell's content-address in the result cache), machine,
policy, workload, seed, energy, misses, cache status, wall time — so a
finished sweep can be reconstructed, diffed, or re-keyed after the fact
without rerunning anything.

Records are flushed line-by-line, so a log is readable (and every
completed cell is preserved) even if the sweep crashes mid-grid.  The
format is append-only JSONL: one self-describing object per line, no
header, safe to concatenate across sweeps sharing a log file.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

import repro

#: Bump when the record layout changes incompatibly.
#: Version 2 added provenance: every record carries the ``repro`` package
#: version alongside the ``v`` schema tag, so cross-run comparisons can
#: detect mismatched inputs instead of silently merging them.
RUN_LOG_VERSION = 2


@dataclass(frozen=True)
class RunLogRecord:
    """One sweep cell's audit record.

    Attributes:
        run_id: the cell's cache key (content address) — stable across
            hosts, so identical cells in different logs share an id.
        policy: policy grammar name (with factory params appended when
            the spec carries any).
        workload: workload name.
        machine: machine spec string (``itsy``, ``itsy@1.23``, ``sa2``).
        seed: workload jitter seed.
        duration_us: simulated length.
        energy_j: measured (DAQ or exact) energy.
        exact_energy_j: the analytic integral.
        miss_count: deadline misses beyond the workload tolerance.
        cache: ``"hit"`` or ``"executed"``.
        wall_s: wall-clock execution time (0.0 for cache hits).
        unix_time: wall-clock time the record was written.
        repro_version: the simulator package version that produced the
            record (defaults to the running package).
    """

    run_id: str
    policy: str
    workload: str
    machine: str
    seed: int
    duration_us: float
    energy_j: float
    exact_energy_j: float
    miss_count: int
    cache: str
    wall_s: float
    unix_time: float
    repro_version: str = repro.__version__

    def to_json(self) -> dict:
        """The record as a JSON-safe dict, version-stamped."""
        return {"v": RUN_LOG_VERSION, **asdict(self)}


class RunLogWriter:
    """Appends :class:`RunLogRecord` lines to a JSONL file.

    Opens lazily on the first write (so merely configuring a log path
    never creates an empty file) and flushes every record.  Usable as a
    context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        self.written = 0

    def write(self, record: RunLogRecord) -> None:
        """Append one record and flush it to disk."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        """Close the underlying file (no-op if never written to)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def now_unix() -> float:
    """Wall-clock timestamp for run-log records (patchable in tests)."""
    return time.time()


def read_run_log(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL run-log back into a list of record dicts.

    Blank lines are skipped; malformed lines raise, since a run-log that
    cannot be parsed has lost its audit value.

    Raises:
        ValueError: for lines that are not valid JSON objects.
    """
    records: List[dict] = []
    for lineno, line in enumerate(_lines(path), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad run-log line: {exc}") from None
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: run-log line is not an object")
        records.append(record)
    return records


def provenance_warnings(records: List[dict]) -> List[str]:
    """Cross-record consistency problems worth flagging before merging.

    A run-log is safe to aggregate when every record shares one schema
    version and one simulator version; records predating the provenance
    fields (schema v1) are flagged rather than rejected.  Returns
    human-readable warning strings (empty when the log is homogeneous).
    """
    warnings: List[str] = []
    schema_versions = sorted({str(r.get("v", "?")) for r in records})
    if len(schema_versions) > 1:
        warnings.append(
            "mixed run-log schema versions: " + ", ".join(schema_versions)
        )
    package_versions = sorted(
        {str(r.get("repro_version", "<pre-provenance>")) for r in records}
    )
    if len(package_versions) > 1:
        warnings.append(
            "records produced by different simulator versions: "
            + ", ".join(package_versions)
        )
    return warnings


def _lines(path: Union[str, Path]) -> Iterator[str]:
    with Path(path).open() as handle:
        yield from handle
