"""Phase-level sweep profiling: where does a sweep's wall time go?

The fleet ledger records *that* a sweep took 12 s; this module records
*where* — pool spin-up, chunk submission, kernel compute, bulk-tap
observer reduction, result IPC, cache I/O, diagnosis — the attribution
discipline the paper applies to joules, applied to the sweep pipeline
itself.  A :class:`PhaseProfile` is a pure observer: it collects
``(phase, t_start, t_end)`` intervals on the shared ``perf_counter``
timebase (the same system-wide clock the telemetry spans ride) from two
sources:

- **engine-side intervals** the :class:`~repro.measure.parallel.SweepEngine`
  stamps around its own pipeline stages (spin-up, submission, cache
  get/put, result IPC), and
- **worker-side stamps** each instrumented cell returns with its result:
  the kernel-compute interval, the bulk-tap observer-reduction interval
  (stamped by the fast kernel around ``_replay_taps`` via the
  process-global sink below), and the diagnosis interval.

Accounting is *exclusive*: an interval nested inside another (observer
reduction runs inside the compute interval) is charged to the inner
phase and subtracted from the outer, so per-phase seconds sum without
double counting.  :meth:`PhaseProfile.coverage` reports the fraction of
sweep wall time the union of intervals explains — the acceptance bar is
>= 95 % on a serial sweep.

This module is deliberately stdlib-only: the kernel fast path calls
:func:`record_kernel_phase` from its hot-loop epilogue, so importing it
must never pull the observability stack (and its kernel imports) back
in a cycle.  When no sink is armed the call is one ``None`` check.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Engine-side phases.
PHASE_SPINUP = "pool spin-up"
PHASE_SUBMIT = "chunk submission"
PHASE_IPC = "result IPC"
PHASE_CACHE = "cache I/O"

#: Worker-side phases.
PHASE_COMPUTE = "kernel compute"
PHASE_REDUCE = "observer reduction"
PHASE_DIAGNOSE = "diagnosis"

#: Canonical display order (slowest-changing pipeline stage first).
PHASE_ORDER = (
    PHASE_SPINUP,
    PHASE_SUBMIT,
    PHASE_COMPUTE,
    PHASE_REDUCE,
    PHASE_DIAGNOSE,
    PHASE_IPC,
    PHASE_CACHE,
)

Interval = Tuple[str, float, float]

#: Worker-global stamp sink, armed per profiled cell.  None (the
#: default) keeps :func:`record_kernel_phase` a no-op in unprofiled
#: workers and in every non-sweep use of the kernel.
_SINK: Optional[List[Interval]] = None


def arm_worker_stamps() -> None:
    """Start collecting kernel-side phase stamps in this process."""
    global _SINK
    _SINK = []


def drain_worker_stamps() -> Tuple[Interval, ...]:
    """Return and disarm the collected stamps (empty if never armed)."""
    global _SINK
    sink, _SINK = _SINK, None
    return tuple(sink) if sink else ()


def record_kernel_phase(phase: str, t_start: float, t_end: float) -> None:
    """Stamp one kernel-side interval, if a profiled cell armed the sink.

    Called by the execution backends (the fast kernel stamps its bulk-tap
    replay as :data:`PHASE_REDUCE`); free when profiling is off.
    """
    sink = _SINK
    if sink is not None:
        sink.append((phase, t_start, t_end))


class PhaseProfile:
    """Attributes sweep wall time to named pipeline phases.

    Intervals arrive in *groups*: one group per executed cell (that
    cell's worker-side stamps) and one group per engine-side interval.
    Nesting is resolved within a group only — two cells running on
    different pool workers overlap in wall time without either nesting
    in the other, so cross-group subtraction would be wrong.

    Thread-safe: the engine's merge loop and any renderer thread may
    touch the profile concurrently.
    """

    def __init__(self) -> None:
        self._groups: List[Tuple[Interval, ...]] = []
        self._lock = threading.Lock()

    # -- recording --------------------------------------------------------------

    def add_interval(self, phase: str, t_start: float, t_end: float) -> None:
        """Record one engine-side interval (its own group)."""
        if t_end > t_start:
            with self._lock:
                self._groups.append(((phase, t_start, t_end),))

    def add_group(self, stamps: Sequence[Interval]) -> None:
        """Record one cell's worker-side stamps as a nesting group."""
        cleaned = tuple(
            (phase, t0, t1) for phase, t0, t1 in stamps if t1 > t0
        )
        if cleaned:
            with self._lock:
                self._groups.append(cleaned)

    # -- accounting -------------------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """Exclusive seconds per phase (worker-seconds, not wall).

        Within a group, an interval strictly contained in a longer one
        is charged to itself and subtracted from the container; so
        observer reduction inside the compute interval never counts
        twice.
        """
        totals: Dict[str, float] = {}
        with self._lock:
            groups = list(self._groups)
        for group in groups:
            for i, (phase, t0, t1) in enumerate(group):
                length = t1 - t0
                nested = sum(
                    b1 - b0
                    for j, (_, b0, b1) in enumerate(group)
                    if j != i and b0 >= t0 and b1 <= t1 and (b1 - b0) < length
                )
                totals[phase] = totals.get(phase, 0.0) + max(
                    0.0, length - nested
                )
        return totals

    def accounted_s(self) -> float:
        """Wall seconds the union of all intervals covers.

        The union (not the sum): two workers computing simultaneously
        cover the same wall second once.  This is what
        :meth:`coverage` compares against the sweep's wall time.
        """
        with self._lock:
            spans = sorted(
                (t0, t1)
                for group in self._groups
                for _, t0, t1 in group
            )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for t0, t1 in spans:
            if cur_start is None or t0 > cur_end:
                if cur_start is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = t0, t1
            else:
                cur_end = max(cur_end, t1)
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def coverage(self, wall_s: float) -> float:
        """Fraction of ``wall_s`` the recorded intervals explain.

        On a serial (``jobs=1``) sweep every pipeline stage runs in the
        engine process, so coverage should be near 1.0; on a pooled
        sweep the union covers the wall time during which *any* stage
        was active.
        """
        if wall_s <= 0:
            return 0.0
        return self.accounted_s() / wall_s

    # -- rendering --------------------------------------------------------------

    def rows(self, wall_s: Optional[float] = None) -> List[Tuple[str, float, float]]:
        """``(phase, seconds, share)`` rows in canonical phase order.

        ``share`` is of the summed per-phase seconds (busy share), or of
        ``wall_s`` when given.  Phases with no recorded time are
        omitted; phases outside :data:`PHASE_ORDER` sort last.
        """
        totals = self.phase_seconds()
        denom = wall_s if wall_s and wall_s > 0 else sum(totals.values())
        order = {phase: i for i, phase in enumerate(PHASE_ORDER)}
        ordered = sorted(
            totals.items(), key=lambda kv: (order.get(kv[0], len(order)), kv[0])
        )
        return [
            (phase, seconds, seconds / denom if denom > 0 else 0.0)
            for phase, seconds in ordered
        ]

    def table(self, wall_s: Optional[float] = None) -> str:
        """The per-phase breakdown as an aligned text table."""
        return format_phase_table(dict(self.phase_seconds()), wall_s=wall_s)


def format_phase_table(
    phase_seconds: Dict[str, float], wall_s: Optional[float] = None
) -> str:
    """Render a ``{phase: seconds}`` mapping as an aligned text table.

    Shared by the live engine profile and the fleet ledger's stored
    phase dicts, so ``repro fleet`` and a post-sweep ``--phases`` print
    the identical layout.
    """
    order = {phase: i for i, phase in enumerate(PHASE_ORDER)}
    items = sorted(
        phase_seconds.items(),
        key=lambda kv: (order.get(kv[0], len(order)), kv[0]),
    )
    denom = wall_s if wall_s and wall_s > 0 else sum(s for _, s in items)
    width = max([len("phase")] + [len(p) for p, _ in items])
    share_head = "of wall" if wall_s else "share"
    lines = [f"{'phase':<{width}}  {'busy s':>8}  {share_head:>7}"]
    for phase, seconds in items:
        share = seconds / denom if denom > 0 else 0.0
        lines.append(f"{phase:<{width}}  {seconds:8.3f}  {share:6.1%}")
    total = sum(s for _, s in items)
    lines.append(f"{'total accounted':<{width}}  {total:8.3f}  "
                 f"{(total / denom if denom > 0 else 0.0):6.1%}")
    return "\n".join(lines)
