"""Observability: kernel event tracing, metrics, and structured run-logs.

The reproduction's answer to the paper's measurement rig.  Three tiers,
all built on existing hook points and all guaranteed not to perturb
results (recorders are pure observers; the determinism tests pin runs
with and without observability to bitwise equality):

- :mod:`repro.obs.trace` — :class:`TraceRecorder` captures every kernel
  observation and exports Chrome trace-event JSON for Perfetto /
  ``chrome://tracing`` (the software analogue of the DAQ capture);
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  picklable snapshots that merge across sweep worker processes;
- :mod:`repro.obs.runlog` — append-only JSONL audit records, one per
  sweep cell.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    KernelMetricsRecorder,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.runlog import (
    RUN_LOG_VERSION,
    RunLogRecord,
    RunLogWriter,
    read_run_log,
)
from repro.obs.trace import (
    TraceRecorder,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "KernelMetricsRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "RUN_LOG_VERSION",
    "RunLogRecord",
    "RunLogWriter",
    "read_run_log",
    "TraceRecorder",
    "validate_chrome_trace",
    "write_chrome_trace",
]
