"""Observability: tracing, metrics, run-logs, diagnostics, and reports.

The reproduction's answer to the paper's measurement rig.  Five tiers,
all built on existing hook points and all guaranteed not to perturb
results (recorders are pure observers; the determinism tests pin runs
with and without observability to bitwise equality):

- :mod:`repro.obs.trace` — :class:`TraceRecorder` captures every kernel
  observation and exports Chrome trace-event JSON for Perfetto /
  ``chrome://tracing`` (the software analogue of the DAQ capture);
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  picklable snapshots that merge across sweep worker processes;
- :mod:`repro.obs.runlog` — append-only JSONL audit records, one per
  sweep cell, provenance-stamped with schema and package versions;
- :mod:`repro.obs.diagnose` — per-run :class:`PolicyDiagnosis`: settling
  detection, prediction-error ledger, deadline-miss attribution, and the
  excess-energy decomposition against the ideal-constant oracle;
- :mod:`repro.obs.report` — run-log + diagnosis aggregation rendered as
  markdown or self-contained HTML.

Fleet analytics ride the same seams: :mod:`repro.obs.profile`
attributes sweep wall time to pipeline phases, :mod:`repro.obs.calibrate`
scores the host so throughput normalizes across machines,
:mod:`repro.obs.fleet` keeps the ledger of past sweeps and runs the
perf-regression sentinel (:func:`check_fleet`), and
:mod:`repro.obs.plot` renders the ledger as dependency-free inline-SVG
trend curves.
"""

from repro.obs.calibrate import (
    HostCalibration,
    calibrate,
    host_score,
    load_calibration,
    save_calibration,
)
from repro.obs.diagnose import (
    DIAGNOSIS_VERSION,
    DiagnosisWriter,
    EnergyDecomposition,
    MissAttribution,
    PolicyDiagnosis,
    PredictionLedger,
    SettlingReport,
    diagnose,
    read_diagnoses,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    KernelMetricsRecorder,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.fleet import (
    FleetLedger,
    FleetRecord,
    SentinelReport,
    check_fleet,
    read_fleet,
    throughput_trend,
)
from repro.obs.plot import fleet_charts, fleet_plot_svg
from repro.obs.profile import (
    PHASE_ORDER,
    PhaseProfile,
    format_phase_table,
    record_kernel_phase,
)
from repro.obs.report import SweepReport, build_report, render_report
from repro.obs.runlog import (
    RUN_LOG_VERSION,
    RunLogRecord,
    RunLogWriter,
    provenance_warnings,
    read_run_log,
)
from repro.obs.trace import (
    TraceRecorder,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "DIAGNOSIS_VERSION",
    "DiagnosisWriter",
    "EnergyDecomposition",
    "FleetLedger",
    "FleetRecord",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "HostCalibration",
    "KernelMetricsRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MissAttribution",
    "PHASE_ORDER",
    "PhaseProfile",
    "PolicyDiagnosis",
    "PredictionLedger",
    "RUN_LOG_VERSION",
    "RunLogRecord",
    "RunLogWriter",
    "SentinelReport",
    "SettlingReport",
    "SweepReport",
    "TraceRecorder",
    "build_report",
    "calibrate",
    "check_fleet",
    "diagnose",
    "fleet_charts",
    "fleet_plot_svg",
    "format_phase_table",
    "host_score",
    "load_calibration",
    "merge_snapshots",
    "provenance_warnings",
    "read_diagnoses",
    "read_fleet",
    "read_run_log",
    "record_kernel_phase",
    "render_report",
    "save_calibration",
    "throughput_trend",
    "validate_chrome_trace",
    "write_chrome_trace",
]
